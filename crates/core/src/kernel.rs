//! The kernel: composition of all IO-Lite subsystems plus the system
//! call surface (§3.4, §4).
//!
//! Data-plane operations are performed for real (bytes move through the
//! real buffer, cache, checksum, pipe and socket structures); each call
//! also returns the simulated CPU [`Charge`] it would cost on the
//! paper's testbed, and disk operations return their device time
//! separately so event-driven callers can overlap them.
//!
//! The public I/O surface is **descriptor-based and fallible**: every
//! I/O object — regular files, both pipe ends, TCP sockets, the stdio
//! triple — lives behind an [`Fd`] in the calling process's table, and
//! every operation returns [`IoResult`]. Raw [`FileId`] entry points
//! remain only as deprecated shims for the cache/bench layers.

use std::collections::{BTreeMap, VecDeque};

use iolite_buf::{Acl, Aggregate, BufferPool, ChunkId, DomainId, PoolId};
use iolite_fs::{
    CacheKey, DiskModel, FileContent, FileId, FileStore, MetadataCache, Policy, UnifiedCache,
};
use iolite_ipc::{Pipe, PipeMode};
use iolite_net::{BufferMode, ChecksumCache, MbufChain, PacketFilter, SendOutcome, TcpConn};
use iolite_sim::SimTime;
use iolite_vm::{IoLiteWindow, MemAccount, MmapView, PageoutDaemon, PhysMemory};

use crate::cost::{Charge, CostCategory, CostModel};
use crate::error::{IoResult, IolError};
use crate::fd::{Fd, FdObject, FdRegistry, Whence};
use crate::metrics::Metrics;
use crate::poll::{PollFd, Readiness};
use crate::process::{Pid, Process};

/// A bounded LRU set of mapped files: Flash's mapped-file cache.
///
/// Flash keeps recently served files mmap'd; a miss costs an
/// `mmap`/`munmap` cycle. Flash-Lite has no equivalent cost — IO-Lite
/// window mappings persist at chunk granularity (§3.2).
#[derive(Debug, Default)]
pub struct MappedFileCache {
    capacity: usize,
    clock: u64,
    entries: std::collections::HashMap<FileId, u64>,
}

impl MappedFileCache {
    /// Creates a cache of the given capacity (0 disables caching: every
    /// touch misses, which models Apache's map-per-request behaviour).
    pub fn new(capacity: usize) -> Self {
        MappedFileCache {
            capacity,
            clock: 0,
            entries: std::collections::HashMap::new(),
        }
    }

    /// Touches a file; returns `true` if it was already mapped.
    pub fn touch(&mut self, file: FileId) -> bool {
        self.clock += 1;
        if self.capacity == 0 {
            return false;
        }
        if let Some(stamp) = self.entries.get_mut(&file) {
            *stamp = self.clock;
            return true;
        }
        if self.entries.len() >= self.capacity {
            if let Some(victim) = self
                .entries
                .iter()
                .min_by_key(|(_, &stamp)| stamp)
                .map(|(&f, _)| f)
            {
                self.entries.remove(&victim);
            }
        }
        self.entries.insert(file, self.clock);
        false
    }

    /// Number of files currently mapped.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Identifies a kernel pipe object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PipeId(pub u32);

/// Identifies a kernel TCP connection (socket) object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ConnId(pub u64);

/// Which end of a pipe a file descriptor refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PipeEnd {
    /// The reading end.
    Read,
    /// The writing end.
    Write,
}

/// The outcome of one kernel operation: simulated CPU cost plus any
/// device time the caller must schedule.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct IoOutcome {
    /// CPU time consumed by the operation.
    pub charge: Charge,
    /// Whether the file cache satisfied the request.
    pub cache_hit: bool,
    /// Bytes read from the disk device (0 on hits).
    pub disk_bytes: u64,
    /// Device service time for those bytes (not CPU; schedule on the
    /// disk resource).
    pub disk_time: SimTime,
    /// New page mappings this operation established.
    pub mapped_pages: u64,
    /// Network send accounting when the descriptor was a socket
    /// (segments, checksum bytes computed vs cached, copies, socket
    /// buffer occupancy). `None` for files and pipes.
    pub net: Option<SendOutcome>,
}

/// A kernel-owned TCP socket: the connection state plus an inbound
/// byte queue fed by the receive path (or test harnesses).
#[derive(Debug)]
struct KernelSocket {
    conn: TcpConn,
    inbound: VecDeque<Aggregate>,
    /// The local side tore the connection down (last descriptor gone).
    closed: bool,
    /// The remote side hung up (FIN/RST): reads drain then EOF, writes
    /// are EPIPE — the "descriptor becomes ready because the peer
    /// closed" case an event loop must observe through `iol_poll`.
    peer_closed: bool,
    /// `O_NONBLOCK`: writes respect the Tss send-buffer bound with
    /// partial progress instead of accepting everything at once.
    nonblocking: bool,
    /// Unacknowledged bytes occupying the send buffer (nonblocking
    /// sockets only; the driver drains them as simulated ACKs arrive
    /// via [`Kernel::socket_drain`]).
    sndbuf_used: u64,
}

impl KernelSocket {
    /// Whether writes can never succeed again (local teardown or a
    /// remote hang-up).
    fn write_dead(&self) -> bool {
        self.closed || self.peer_closed
    }

    /// Bytes a write may accept right now: the Tss bound for
    /// nonblocking sockets, unbounded for blocking ones (which model
    /// write-until-drained).
    fn send_space(&self) -> u64 {
        if self.nonblocking {
            (self.conn.tss() as u64).saturating_sub(self.sndbuf_used)
        } else {
            u64::MAX
        }
    }
}

/// A kernel pipe plus the ACL governing zero-copy transfers out of it
/// (`None` = the permissive kernel default; pipes between mutually
/// untrusting processes carry the writer pool's ACL, §3.10).
#[derive(Debug)]
struct PipeSlot {
    pipe: Pipe,
    acl: Option<Acl>,
    /// Set when the last read-end descriptor disappears: subsequent
    /// writes are `EPIPE` — there is nobody left to drain the pipe.
    reader_gone: bool,
}

/// The stdio console pipes backing a process's fds 0/1/2.
#[derive(Debug, Clone, Copy)]
struct Console {
    stdin: PipeId,
    stdout: PipeId,
    stderr: PipeId,
}

/// The simulated operating system.
///
/// Fields are public by design: experiment drivers reach directly into
/// subsystems (the checksum cache, the memory accountant, the filter)
/// the same way kernel subsystems reach each other.
pub struct Kernel {
    /// The machine/cost model.
    pub cost: CostModel,
    /// The IO-Lite window (chunk mappings per domain).
    pub window: IoLiteWindow,
    /// Physical-memory accountant.
    pub physmem: PhysMemory,
    /// The §3.7 pageout daemon.
    pub pageout: PageoutDaemon,
    /// File contents.
    pub store: FileStore,
    /// The "old" metadata buffer cache.
    pub meta: MetadataCache,
    /// The unified IO-Lite file cache.
    pub cache: UnifiedCache,
    /// The Internet checksum cache (§3.9).
    pub cksum: ChecksumCache,
    /// The early-demux packet filter (§3.6).
    pub filter: PacketFilter,
    /// Disk timing model.
    pub disk: DiskModel,
    /// Flash's mapped-file cache (conventional servers only).
    pub mapped_files: MappedFileCache,
    /// Mechanism metrics.
    pub metrics: Metrics,
    /// The pool backing the file cache. Its ACL is extended to every
    /// process that reads files: web content is world-readable, and the
    /// paper's private-data story (separate per-process/CGI pools) is
    /// carried by the per-process pools instead.
    cache_pool: BufferPool,
    cache_pool_acl: Acl,
    processes: BTreeMap<Pid, Process>,
    pipes: BTreeMap<PipeId, PipeSlot>,
    sockets: BTreeMap<ConnId, KernelSocket>,
    consoles: BTreeMap<Pid, Console>,
    fds: FdRegistry,
    next_pid: u32,
    next_pool: u32,
    next_pipe: u32,
    next_conn: u64,
    clock: SimTime,
}

impl Kernel {
    /// Creates a kernel with the default (LRU) cache policy.
    pub fn new(cost: CostModel) -> Self {
        Kernel::with_policy(cost, Policy::Lru)
    }

    /// Creates a kernel with an explicit file-cache policy (Flash-Lite
    /// installs [`Policy::Gds`] through the §3.7 customization hook).
    pub fn with_policy(cost: CostModel, policy: Policy) -> Self {
        let mut physmem = PhysMemory::new(cost.ram_bytes);
        physmem.reserve(MemAccount::Kernel, cost.kernel_reserve_bytes);
        let budget = physmem.cache_budget();
        let disk = DiskModel {
            avg_position_ms: cost.disk_position_ms,
            transfer_mb_s: cost.disk_mb_s,
        };
        Kernel {
            cost,
            window: IoLiteWindow::new(iolite_buf::DEFAULT_CHUNK_SIZE),
            physmem,
            pageout: PageoutDaemon::new(),
            store: FileStore::new(),
            meta: MetadataCache::new(4096),
            cache: UnifiedCache::new(policy, budget),
            cksum: ChecksumCache::new(1 << 16),
            filter: PacketFilter::new(),
            disk,
            mapped_files: MappedFileCache::new(cost.flash_mapped_cache_files),
            metrics: Metrics::new(),
            cache_pool: BufferPool::new(
                PoolId(0),
                Acl::kernel_only(),
                iolite_buf::DEFAULT_CHUNK_SIZE,
            ),
            cache_pool_acl: Acl::kernel_only(),
            processes: BTreeMap::new(),
            pipes: BTreeMap::new(),
            sockets: BTreeMap::new(),
            consoles: BTreeMap::new(),
            fds: FdRegistry::new(),
            next_pid: 1,
            next_pool: 1,
            next_pipe: 1,
            next_conn: 1,
            clock: SimTime::ZERO,
        }
    }

    // ---- processes and pools -------------------------------------------

    /// Spawns a process with a private default pool and the conventional
    /// stdio triple installed at fds 0/1/2 ([`Fd::STDIN`],
    /// [`Fd::STDOUT`], [`Fd::STDERR`]), each backed by a console pipe
    /// the harness can drive via [`Kernel::feed_stdin`] /
    /// [`Kernel::read_stdout`] / [`Kernel::read_stderr`] — or re-plumb
    /// with [`Kernel::dup2_fd`], shell-style.
    pub fn spawn(&mut self, name: impl Into<String>) -> Pid {
        let pid = Pid(self.next_pid);
        self.next_pid += 1;
        let pool_id = PoolId(self.next_pool);
        self.next_pool += 1;
        let proc = Process::new(pid, name.into(), pool_id, iolite_buf::DEFAULT_CHUNK_SIZE);
        // File data read by this process becomes readable to it.
        self.cache_pool_acl.grant(pid.domain());
        self.processes.insert(pid, proc);
        // The stdio triple: three zero-copy console pipes, wired to the
        // conventional descriptor numbers.
        let console = Console {
            stdin: self.pipe_create(PipeMode::ZeroCopy),
            stdout: self.pipe_create(PipeMode::ZeroCopy),
            stderr: self.pipe_create(PipeMode::ZeroCopy),
        };
        self.consoles.insert(pid, console);
        let table = self.fds.table(pid);
        table.install_at(Fd::STDIN, FdObject::PipeRead(console.stdin));
        table.install_at(Fd::STDOUT, FdObject::PipeWrite(console.stdout));
        table.install_at(Fd::STDERR, FdObject::PipeWrite(console.stderr));
        pid
    }

    /// Looks up a process.
    ///
    /// # Panics
    ///
    /// Panics on unknown pids — experiment drivers own process lifetimes.
    pub fn process(&self, pid: Pid) -> &Process {
        &self.processes[&pid]
    }

    /// Creates an additional allocation pool (the `IOL_create_pool`
    /// call of §3.4) with an explicit ACL.
    pub fn create_pool(&mut self, acl: Acl) -> BufferPool {
        let id = PoolId(self.next_pool);
        self.next_pool += 1;
        BufferPool::new(id, acl, iolite_buf::DEFAULT_CHUNK_SIZE)
    }

    // ---- clock and charging --------------------------------------------

    /// The kernel's sequential clock (used by the application harness;
    /// the Web driver uses an external event clock instead).
    pub fn now(&self) -> SimTime {
        self.clock
    }

    /// Adds CPU time to the sequential clock and the metrics breakdown.
    pub fn charge(&mut self, cat: CostCategory, c: Charge) {
        self.clock += c.time;
        self.metrics.charge(cat, c.time);
    }

    /// Advances the sequential clock by non-CPU time (e.g. disk waits).
    pub fn advance(&mut self, t: SimTime) {
        self.clock += t;
    }

    /// Resets the sequential clock (metrics are kept).
    pub fn reset_clock(&mut self) {
        self.clock = SimTime::ZERO;
    }

    // ---- file system ---------------------------------------------------

    /// Creates a file with explicit contents.
    pub fn create_file(&mut self, name: &str, data: &[u8]) -> FileId {
        self.store
            .create(name, FileContent::Explicit(data.to_vec()))
    }

    /// Creates a synthetic (pattern-generated) file.
    pub fn create_synthetic_file(&mut self, name: &str, len: u64, seed: u64) -> FileId {
        self.store.create_synthetic(name, len, seed)
    }

    /// Resolves a path through the metadata cache.
    pub fn lookup(&mut self, name: &str) -> (Option<FileId>, Charge) {
        let store = &self.store;
        let result = self.meta.lookup(name, || store.lookup(name));
        let charge = match result {
            Some((_, true)) => Charge::us(self.cost.syscall_us),
            // A metadata miss costs an extra metadata-cache fill; the
            // paper keeps metadata in the old buffer cache, so no device
            // time is charged for the common in-memory case.
            _ => Charge::us(self.cost.syscall_us * 3.0),
        };
        self.metrics.syscalls += 1;
        (result.map(|(id, _)| id), charge)
    }

    /// Re-syncs the file-cache budget with the memory accountant and
    /// returns entries evicted by the shrink.
    ///
    /// Evictions are reported to the pageout daemon as replaced
    /// cached-I/O pages, feeding the §3.7 trigger statistics.
    pub fn rebalance_cache(&mut self) -> usize {
        self.physmem
            .set(MemAccount::FileCache, self.cache.resident_bytes());
        let budget = self.physmem.cache_budget();
        let evicted = self.cache.set_budget(budget);
        for (_, agg) in &evicted {
            let pages = agg.len().div_ceil(iolite_buf::PAGE_SIZE as u64);
            for _ in 0..pages.min(64) {
                self.pageout.page_replaced(iolite_vm::PageClass::CachedIo);
            }
        }
        self.physmem
            .set(MemAccount::FileCache, self.cache.resident_bytes());
        evicted.len()
    }

    /// Reports VM replacement pressure from non-cache pages (application
    /// anonymous memory being paged) and applies the §3.7 rule: if more
    /// than half of recently replaced pages held cached I/O data, one
    /// cache entry is evicted. Returns whether an eviction happened.
    pub fn vm_pressure(&mut self, other_pages: u64) -> bool {
        for _ in 0..other_pages {
            self.pageout.page_replaced(iolite_vm::PageClass::Other);
        }
        if self.pageout.should_evict_cache_entry() {
            if let Some((_, agg)) = self.cache.evict_one() {
                // The evicted entry's dirty pages would go to their
                // backing stores (paging space + the files they cache).
                let pages = agg.len().div_ceil(iolite_buf::PAGE_SIZE as u64);
                self.pageout
                    .backing_store_write(1, pages * iolite_buf::PAGE_SIZE as u64);
                self.pageout.eviction_performed();
                self.physmem
                    .set(MemAccount::FileCache, self.cache.resident_bytes());
                return true;
            }
        }
        false
    }

    /// Reads a file extent through the unified cache with IO-Lite
    /// semantics: returns a buffer aggregate sharing the cache's
    /// physical copy (`IOL_read`, §3.4).
    ///
    /// Less data than requested is returned at end-of-file (the API
    /// explicitly allows short reads). This is the raw-[`FileId`] inner
    /// path behind [`Kernel::iol_read_fd`] / [`Kernel::iol_pread`].
    fn read_file_at(&mut self, pid: Pid, file: FileId, offset: u64, len: u64) -> (Aggregate, IoOutcome) {
        let mut out = IoOutcome {
            charge: Charge::us(self.cost.syscall_us),
            ..IoOutcome::default()
        };
        self.metrics.syscalls += 1;
        let whole = self.read_whole_cached(file, &mut out);
        let flen = whole.len();
        let start = offset.min(flen);
        let take = len.min(flen - start);
        let agg = whole.range(start, take).expect("clamped range");
        // Transfer: make the aggregate's chunks readable in the caller.
        let pages = self.transfer_to(&agg, pid.domain());
        out.mapped_pages += pages;
        out.charge += self.cost.page_maps(pages);
        (agg, out)
    }

    /// Replaces a file extent with the contents of `agg` (`IOL_write`,
    /// §3.4): the cached aggregate is replaced, never mutated, so prior
    /// readers keep their snapshots (§3.5).
    ///
    /// Pins held on the key (e.g. by the network mid-transmission)
    /// survive the replacement: the cache keys pin counts by
    /// [`CacheKey`], not by entry generation, so a deferred unpin from
    /// a pre-write transmission cannot strip the protection of a
    /// post-write one.
    fn write_file_at(&mut self, _pid: Pid, file: FileId, offset: u64, agg: &Aggregate) -> IoOutcome {
        let mut out = IoOutcome {
            charge: Charge::us(self.cost.syscall_us),
            ..IoOutcome::default()
        };
        self.metrics.syscalls += 1;
        // Update the backing store vectored, run by run (write-back
        // happens off the critical path; no device time charged here,
        // and no materialization of the aggregate).
        let mut run_offset = offset;
        for chunk in agg.chunks() {
            self.store.write(file, run_offset, chunk);
            run_offset += chunk.len() as u64;
        }
        // Snapshot-preserving cache replacement: rebuild the whole-file
        // entry as head ++ agg ++ tail, chaining by reference (indexed
        // range views; slices outside the extent are not walked twice).
        let key = CacheKey::whole(file);
        if let Some(old) = self.cache.replace_for_write(&key) {
            let head_len = offset.min(old.len());
            let mut rebuilt = old.range(0, head_len).expect("clamped");
            rebuilt.append(agg);
            let tail_start = (offset + agg.len()).min(old.len());
            rebuilt.append(&old.range(tail_start, old.len() - tail_start).expect("clamped"));
            self.cache.insert(key, rebuilt);
            self.rebalance_cache();
        }
        out.charge += Charge::ZERO;
        out
    }

    /// Backward-compatible copying read at an explicit offset (§4.2:
    /// "a data copy operation is used to move data between application
    /// buffers and IO-Lite buffers").
    fn posix_file_read(&mut self, _pid: Pid, file: FileId, offset: u64, len: u64) -> (Vec<u8>, IoOutcome) {
        let mut out = IoOutcome {
            charge: Charge::us(self.cost.syscall_us),
            ..IoOutcome::default()
        };
        self.metrics.syscalls += 1;
        let whole = self.read_whole_cached(file, &mut out);
        let flen = whole.len();
        let start = offset.min(flen);
        let take = len.min(flen - start);
        let mut dst = vec![0u8; take as usize];
        whole.copy_to(start, &mut dst);
        self.metrics.bytes_copied += take;
        out.charge += self.cost.cached_copy(take);
        (dst, out)
    }

    /// Backward-compatible copying write at an explicit offset.
    fn posix_file_write(&mut self, pid: Pid, file: FileId, offset: u64, data: &[u8]) -> IoOutcome {
        let agg = Aggregate::from_bytes(&self.cache_pool, data);
        self.metrics.bytes_copied += data.len() as u64;
        let mut out = self.write_file_at(pid, file, offset, &agg);
        out.charge += self.cost.copy(data.len() as u64);
        out
    }

    /// Maps a whole file (§3.8 `mmap`): contiguous view, lazy alignment
    /// copies, COW against cached snapshots.
    fn file_mmap(&mut self, pid: Pid, file: FileId) -> (MmapView, IoOutcome) {
        let mut out = IoOutcome {
            charge: Charge::us(self.cost.syscall_us),
            ..IoOutcome::default()
        };
        self.metrics.syscalls += 1;
        let whole = self.read_whole_cached(file, &mut out);
        let pages = self.transfer_to(&whole, pid.domain());
        out.mapped_pages += pages;
        out.charge += self.cost.page_maps(pages);
        (MmapView::new(whole), out)
    }

    // ---- deprecated raw-FileId shims -----------------------------------

    /// `IOL_read` on a raw [`FileId`].
    #[deprecated(
        note = "application code uses the Fd-based API (`iol_read_fd`/`iol_pread`); \
                this direct-FileId shim remains for the cache/bench layers"
    )]
    pub fn iol_read(&mut self, pid: Pid, file: FileId, offset: u64, len: u64) -> (Aggregate, IoOutcome) {
        self.read_file_at(pid, file, offset, len)
    }

    /// `IOL_write` on a raw [`FileId`].
    #[deprecated(
        note = "application code uses the Fd-based API (`iol_write_fd`/`iol_pwrite`); \
                this direct-FileId shim remains for the cache/bench layers"
    )]
    pub fn iol_write(&mut self, pid: Pid, file: FileId, offset: u64, agg: &Aggregate) -> IoOutcome {
        self.write_file_at(pid, file, offset, agg)
    }

    /// Copying `read` on a raw [`FileId`].
    #[deprecated(
        note = "application code uses the Fd-based API (`posix_read_fd`); \
                this direct-FileId shim remains for the cache/bench layers"
    )]
    pub fn posix_read(&mut self, pid: Pid, file: FileId, offset: u64, len: u64) -> (Vec<u8>, IoOutcome) {
        self.posix_file_read(pid, file, offset, len)
    }

    /// Copying `write` on a raw [`FileId`].
    #[deprecated(
        note = "application code uses the Fd-based API (`posix_write_fd`); \
                this direct-FileId shim remains for the cache/bench layers"
    )]
    pub fn posix_write(&mut self, pid: Pid, file: FileId, offset: u64, data: &[u8]) -> IoOutcome {
        self.posix_file_write(pid, file, offset, data)
    }

    /// `mmap` on a raw [`FileId`].
    #[deprecated(
        note = "application code uses the Fd-based API (`mmap_fd`); \
                this direct-FileId shim remains for the cache/bench layers"
    )]
    pub fn mmap(&mut self, pid: Pid, file: FileId) -> (MmapView, IoOutcome) {
        self.file_mmap(pid, file)
    }

    /// Cache-or-disk read of the whole file, maintaining budgets.
    fn read_whole_cached(&mut self, file: FileId, out: &mut IoOutcome) -> Aggregate {
        let key = CacheKey::whole(file);
        if let Some(agg) = self.cache.lookup(&key) {
            out.cache_hit = true;
            return agg;
        }
        let len = self.store.len(file).unwrap_or(0);
        let bytes = self.store.read(file, 0, len).unwrap_or_default();
        let agg = Aggregate::from_bytes_aligned(&self.cache_pool, &bytes, iolite_buf::PAGE_SIZE);
        out.disk_bytes = len;
        out.disk_time = self.disk.access_time(len);
        self.metrics.disk_ops += 1;
        self.metrics.disk_bytes += len;
        // Admit, then shrink to budget; evicted chunks that drained
        // return to the pool and are eventually released.
        self.cache.insert(key, agg.clone());
        self.rebalance_cache();
        self.cache_pool.release_free_chunks(u64::MAX);
        agg
    }

    /// Makes an aggregate's chunks readable in `domain`, charging only
    /// first-time mappings (§3.2). Returns newly mapped pages.
    pub fn transfer_to(&mut self, agg: &Aggregate, domain: DomainId) -> u64 {
        let chunks: Vec<ChunkId> = agg.slices().map(|s| s.id().chunk).collect();
        let pages = self
            .window
            .transfer(&chunks, domain, &self.cache_pool_acl.clone())
            .unwrap_or(0);
        self.metrics.pages_mapped += pages;
        pages
    }

    /// Like [`Kernel::transfer_to`] but enforcing an explicit ACL
    /// (pipe transfers between mutually untrusting processes).
    ///
    /// # Errors
    ///
    /// Returns [`iolite_vm::AccessDenied`] when `domain` is not on
    /// `acl`.
    pub fn transfer_with_acl(
        &mut self,
        agg: &Aggregate,
        domain: DomainId,
        acl: &Acl,
    ) -> Result<u64, iolite_vm::AccessDenied> {
        let chunks: Vec<ChunkId> = agg.slices().map(|s| s.id().chunk).collect();
        let pages = self.window.transfer(&chunks, domain, acl)?;
        self.metrics.pages_mapped += pages;
        Ok(pages)
    }

    // ---- pipes -----------------------------------------------------------

    /// Creates a pipe in the given mode with the BSD 64KB buffer.
    pub fn pipe_create(&mut self, mode: PipeMode) -> PipeId {
        self.pipe_create_inner(mode, None)
    }

    /// Creates a pipe whose zero-copy transfers are governed by `acl`
    /// (the writer pool's ACL, §3.10: the server and each CGI instance
    /// have separate pools with different ACLs — the pipe enforces the
    /// writer's on its reader).
    pub fn pipe_create_with_acl(&mut self, mode: PipeMode, acl: Acl) -> PipeId {
        self.pipe_create_inner(mode, Some(acl))
    }

    fn pipe_create_inner(&mut self, mode: PipeMode, acl: Option<Acl>) -> PipeId {
        let id = PipeId(self.next_pipe);
        self.next_pipe += 1;
        self.pipes.insert(
            id,
            PipeSlot {
                pipe: Pipe::new(mode, 64 * 1024),
                acl,
                reader_gone: false,
            },
        );
        id
    }

    /// The raw-id pipe write behind [`Kernel::iol_write_fd`].
    fn pipe_write_inner(&mut self, _pid: Pid, id: PipeId, data: &Aggregate) -> (u64, IoOutcome) {
        let mut out = IoOutcome {
            charge: Charge::us(self.cost.syscall_us),
            ..IoOutcome::default()
        };
        self.metrics.syscalls += 1;
        let slot = self.pipes.get_mut(&id).expect("unknown pipe");
        let before = slot.pipe.stats().bytes_copied;
        let accepted = slot.pipe.write(data);
        let copied = slot.pipe.stats().bytes_copied - before;
        if copied > 0 {
            self.metrics.bytes_copied += copied;
            out.charge += self.cost.copy(copied);
        }
        (accepted, out)
    }

    /// The raw-id pipe read behind [`Kernel::iol_read_fd`]; zero-copy
    /// pipes also transfer the received chunks into the reader's domain
    /// (first time only — recycled buffers ride existing mappings,
    /// §3.2), enforcing the pipe's ACL when it carries one.
    fn pipe_read_inner(
        &mut self,
        pid: Pid,
        id: PipeId,
        max: u64,
    ) -> Result<(Option<Aggregate>, IoOutcome), IolError> {
        let mut out = IoOutcome {
            charge: Charge::us(self.cost.syscall_us),
            ..IoOutcome::default()
        };
        self.metrics.syscalls += 1;
        let slot = self.pipes.get_mut(&id).expect("unknown pipe");
        // ACL'd pipes refuse unauthorized readers *before* any byte is
        // dequeued: a denial must not destroy data still in flight to
        // the legitimate reader.
        if let Some(acl) = &slot.acl {
            if !acl.allows(pid.domain()) {
                return Err(IolError::PermissionDenied {
                    domain: pid.domain(),
                });
            }
        }
        let mode = slot.pipe.mode();
        let acl = slot.acl.clone();
        let before = slot.pipe.stats().bytes_copied;
        let got = slot.pipe.read(max);
        let copied = slot.pipe.stats().bytes_copied - before;
        if copied > 0 {
            self.metrics.bytes_copied += copied;
            out.charge += self.cost.copy(copied);
        }
        if let (Some(agg), PipeMode::ZeroCopy) = (&got, mode) {
            // Pass-by-reference: the reader needs (at most first-time)
            // read mappings, gated by the pipe's ACL when it carries one
            // (pipes between mutually untrusting processes); plain pipes
            // rely on pool ACLs at allocation sites.
            let pages = match &acl {
                Some(acl) => self
                    .transfer_with_acl(agg, pid.domain(), acl)
                    .map_err(|denied| IolError::PermissionDenied {
                        domain: denied.domain,
                    })?,
                None => self.transfer_to(agg, pid.domain()),
            };
            out.mapped_pages += pages;
            out.charge += self.cost.page_maps(pages);
        }
        Ok((got, out))
    }

    /// Writes to a pipe by raw id, returning accepted bytes and the cost.
    #[deprecated(
        note = "application code writes pipes through descriptors (`iol_write_fd`); \
                this raw-PipeId shim remains for kernel-layer callers"
    )]
    pub fn pipe_write(&mut self, pid: Pid, id: PipeId, data: &Aggregate) -> (u64, IoOutcome) {
        self.pipe_write_inner(pid, id, data)
    }

    /// Reads from a pipe by raw id.
    #[deprecated(
        note = "application code reads pipes through descriptors (`iol_read_fd`); \
                this raw-PipeId shim remains for kernel-layer callers"
    )]
    pub fn pipe_read(&mut self, pid: Pid, id: PipeId, max: u64) -> (Option<Aggregate>, IoOutcome) {
        self.pipe_read_inner(pid, id, max)
            .expect("raw pipe reads bypass ACL'd pipes")
    }

    /// Closes a pipe's write end by raw id (descriptor holders use
    /// [`Kernel::close_fd`], which calls this on last close).
    pub fn pipe_close(&mut self, id: PipeId) {
        if let Some(slot) = self.pipes.get_mut(&id) {
            slot.pipe.close();
        }
    }

    /// Immutable access to a pipe (tests, stats).
    pub fn pipe(&self, id: PipeId) -> &Pipe {
        &self.pipes[&id].pipe
    }

    // ---- sockets ---------------------------------------------------------

    /// Creates a TCP connection in the kernel's socket registry and
    /// installs a descriptor for it in `pid`'s table. The §3.4 promise
    /// made real: the same `IOL_read`/`IOL_write` calls that act on
    /// files and pipes drive the socket's zero-copy (or copying) send
    /// path.
    pub fn socket_create(&mut self, pid: Pid, mode: BufferMode, mss: usize, tss: usize) -> Fd {
        let id = ConnId(self.next_conn);
        self.next_conn += 1;
        self.sockets.insert(
            id,
            KernelSocket {
                conn: TcpConn::new(id.0, mode, mss, tss),
                inbound: VecDeque::new(),
                closed: false,
                peer_closed: false,
                nonblocking: false,
                sndbuf_used: 0,
            },
        );
        self.fds.table(pid).install(FdObject::Socket(id))
    }

    /// Read-only access to the connection behind a socket descriptor
    /// (window rates, lifetime totals).
    ///
    /// # Errors
    ///
    /// [`IolError::NotOpen`] for unknown descriptors,
    /// [`IolError::BadFdKind`] for non-sockets.
    pub fn socket(&self, pid: Pid, fd: Fd) -> Result<&TcpConn, IolError> {
        let desc = self
            .fds
            .get_table(pid)
            .and_then(|t| t.get(fd))
            .ok_or(IolError::NotOpen { fd })?;
        let object = desc.borrow().object;
        match object {
            FdObject::Socket(id) => Ok(&self.sockets[&id].conn),
            _ => Err(IolError::BadFdKind {
                fd,
                operation: "socket access",
            }),
        }
    }

    /// Delivers inbound payload to a socket (the receive path's
    /// hand-off after demux/reassembly, or a test harness playing the
    /// remote peer). The data becomes readable through
    /// [`Kernel::iol_read_fd`].
    pub fn socket_deliver(&mut self, pid: Pid, fd: Fd, payload: Aggregate) -> IoResult<u64> {
        let id = self.resolve_socket(pid, fd, "socket delivery")?;
        let sock = self.sockets.get_mut(&id).expect("registered socket");
        if sock.closed || sock.peer_closed {
            return Err(IolError::Closed);
        }
        let len = payload.len();
        sock.inbound.push_back(payload);
        Ok((len, IoOutcome::default()))
    }

    /// Accounting-only send on a *copy-mode* socket descriptor: the
    /// conventional `write(2)` path, whose costs depend only on the
    /// byte count (copies have no identity, so no cache can apply).
    /// Updates the copy/checksum metrics centrally and returns the
    /// [`SendOutcome`] in both the value and `outcome.net`.
    pub fn socket_send_accounted(&mut self, pid: Pid, fd: Fd, len: u64) -> IoResult<SendOutcome> {
        let id = self.resolve_socket(pid, fd, "accounted socket send")?;
        let sock = self.sockets.get_mut(&id).expect("registered socket");
        if sock.write_dead() {
            return Err(IolError::Closed);
        }
        let send = sock.conn.send_accounted(len);
        self.metrics.syscalls += 1;
        self.metrics.bytes_copied += send.bytes_copied;
        self.metrics.bytes_checksummed += send.csum_bytes_computed;
        let out = IoOutcome {
            charge: Charge::us(self.cost.syscall_us),
            net: Some(send),
            ..IoOutcome::default()
        };
        Ok((send, out))
    }

    /// Materializes the actual TCP segment chains a descriptor write of
    /// `payload` would emit (end-to-end byte-exactness tests; the hot
    /// path only needs [`Kernel::iol_write_fd`]'s accounting).
    pub fn socket_transmit_segments(
        &mut self,
        pid: Pid,
        fd: Fd,
        payload: &Aggregate,
    ) -> IoResult<Vec<MbufChain>> {
        let id = self.resolve_socket(pid, fd, "segment materialization")?;
        let sock = self.sockets.get_mut(&id).expect("registered socket");
        if sock.write_dead() {
            return Err(IolError::Closed);
        }
        let chains = sock.conn.build_segments(payload);
        let out = IoOutcome {
            charge: Charge::us(self.cost.syscall_us),
            ..IoOutcome::default()
        };
        Ok((chains, out))
    }

    /// Sets a socket descriptor's `O_NONBLOCK` flag. Nonblocking
    /// sockets bound their send buffer at Tss: writes accept only what
    /// fits ([`IolError::ShortIo`] carries partial progress,
    /// [`IolError::WouldBlock`] a full buffer) and the descriptor
    /// becomes writable again as [`Kernel::socket_drain`] simulates the
    /// wire acknowledging data.
    ///
    /// # Errors
    ///
    /// [`IolError::NotOpen`] / [`IolError::BadFdKind`] as usual.
    pub fn set_nonblocking(&mut self, pid: Pid, fd: Fd, nonblocking: bool) -> Result<(), IolError> {
        let id = self.resolve_socket(pid, fd, "set O_NONBLOCK")?;
        let sock = self.sockets.get_mut(&id).expect("registered socket");
        sock.nonblocking = nonblocking;
        Ok(())
    }

    /// Acknowledges up to `max` bytes of a nonblocking socket's send
    /// buffer (the wire drained them), returning the bytes freed. The
    /// event driver calls this as simulated transmission completes;
    /// no CPU is charged — per-packet and checksum work was already
    /// billed at send time.
    ///
    /// # Errors
    ///
    /// [`IolError::NotOpen`] / [`IolError::BadFdKind`] as usual, and
    /// [`IolError::Closed`] once the peer hung up — a dead peer
    /// acknowledges nothing, so unacknowledged bytes can never drain
    /// and the in-flight response must be failed, not completed.
    pub fn socket_drain(&mut self, pid: Pid, fd: Fd, max: u64) -> Result<u64, IolError> {
        let id = self.resolve_socket(pid, fd, "send-buffer drain")?;
        let sock = self.sockets.get_mut(&id).expect("registered socket");
        if sock.write_dead() {
            return Err(IolError::Closed);
        }
        let take = sock.sndbuf_used.min(max);
        sock.sndbuf_used -= take;
        Ok(take)
    }

    /// Free space in a socket's send buffer (`Tss - unacknowledged`);
    /// the event loop sizes its next write window with this, the way
    /// Flash sizes `writev` calls against `FIONSPACE`.
    ///
    /// # Errors
    ///
    /// [`IolError::NotOpen`] / [`IolError::BadFdKind`] as usual.
    pub fn socket_space(&mut self, pid: Pid, fd: Fd) -> Result<u64, IolError> {
        let id = self.resolve_socket(pid, fd, "send-buffer space")?;
        let sock = &self.sockets[&id];
        // A blocking socket's buffer is always (logically) empty; cap
        // the answer at Tss either way.
        Ok(sock.send_space().min(sock.conn.tss() as u64))
    }

    /// Bytes sitting unacknowledged in a socket's send buffer.
    ///
    /// # Errors
    ///
    /// [`IolError::NotOpen`] / [`IolError::BadFdKind`] as usual.
    pub fn socket_unacked(&mut self, pid: Pid, fd: Fd) -> Result<u64, IolError> {
        let id = self.resolve_socket(pid, fd, "send-buffer occupancy")?;
        Ok(self.sockets[&id].sndbuf_used)
    }

    /// Marks a socket's remote side as hung up (FIN/RST arrived): reads
    /// drain the delivered data then return EOF, writes fail with
    /// [`IolError::Closed`], and `iol_poll` reports `eof`/`epipe` — the
    /// readiness transition an event loop must observe when a client
    /// disconnects mid-response.
    ///
    /// # Errors
    ///
    /// [`IolError::NotOpen`] / [`IolError::BadFdKind`] as usual.
    pub fn socket_peer_close(&mut self, pid: Pid, fd: Fd) -> Result<(), IolError> {
        let id = self.resolve_socket(pid, fd, "peer close")?;
        let sock = self.sockets.get_mut(&id).expect("registered socket");
        sock.peer_closed = true;
        Ok(())
    }

    // ---- readiness (the event-driven servers' select/poll, §6) ----------

    /// Reports readiness for a set of descriptors, `poll(2)`-style: one
    /// [`Readiness`] per entry, in order. Pipe ends (stdio included),
    /// kernel-registry sockets, and regular files are all supported;
    /// an entry that fails to resolve reports `invalid` (`POLLNVAL`)
    /// without failing the scan.
    ///
    /// The call is charged as one trap plus a per-entry scan cost
    /// ([`CostModel::poll_fd_us`]) — the select/poll overhead that made
    /// event-driven servers sensitive to poll-set size long before the
    /// payload moved.
    ///
    /// # Errors
    ///
    /// None today — the result is total; the `IoResult` shape carries
    /// the accounting like every other descriptor operation.
    pub fn iol_poll(&mut self, pid: Pid, fds: &[PollFd]) -> IoResult<Vec<Readiness>> {
        let out = IoOutcome {
            charge: Charge::us(self.cost.syscall_us + fds.len() as f64 * self.cost.poll_fd_us),
            ..IoOutcome::default()
        };
        self.metrics.syscalls += 1;
        let table = self.fds.get_table(pid);
        let mut events = Vec::with_capacity(fds.len());
        for entry in fds {
            let Some(desc) = table.and_then(|t| t.get(entry.fd)) else {
                events.push(Readiness {
                    invalid: true,
                    ..Readiness::PENDING
                });
                continue;
            };
            let object = desc.borrow().object;
            events.push(self.object_readiness(object));
        }
        Ok((events, out))
    }

    /// The current readiness of one descriptor object.
    fn object_readiness(&self, object: FdObject) -> Readiness {
        match object {
            // Regular files never block (poll(2) semantics).
            FdObject::File(_) => Readiness {
                readable: true,
                writable: true,
                ..Readiness::PENDING
            },
            FdObject::PipeRead(id) => {
                let slot = &self.pipes[&id];
                let buffered = slot.pipe.buffered();
                Readiness {
                    readable: buffered > 0,
                    // All write ends gone and nothing left to drain:
                    // the next read returns empty.
                    eof: buffered == 0 && slot.pipe.is_closed(),
                    ..Readiness::PENDING
                }
            }
            FdObject::PipeWrite(id) => {
                let slot = &self.pipes[&id];
                let dead = slot.pipe.is_closed() || slot.reader_gone;
                Readiness {
                    writable: !dead && slot.pipe.space() > 0,
                    epipe: dead,
                    ..Readiness::PENDING
                }
            }
            FdObject::Socket(id) => {
                let Some(sock) = self.sockets.get(&id) else {
                    return Readiness {
                        invalid: true,
                        ..Readiness::PENDING
                    };
                };
                let hung_up = sock.write_dead();
                Readiness {
                    readable: !sock.inbound.is_empty(),
                    writable: !hung_up && sock.send_space() > 0,
                    eof: sock.inbound.is_empty() && hung_up,
                    epipe: hung_up,
                    ..Readiness::PENDING
                }
            }
        }
    }

    /// Resolves a descriptor to its open-file description (`EBADF` on
    /// unknown numbers) — the one lookup every fd operation goes
    /// through.
    fn resolve_fd(&mut self, pid: Pid, fd: Fd) -> Result<crate::fd::OpenFileRef, IolError> {
        self.fds.table(pid).get(fd).ok_or(IolError::NotOpen { fd })
    }

    /// Resolves a descriptor that must name a regular file.
    fn resolve_file(&mut self, pid: Pid, fd: Fd, operation: &'static str) -> Result<FileId, IolError> {
        let desc = self.resolve_fd(pid, fd)?;
        let object = desc.borrow().object;
        match object {
            FdObject::File(file) => Ok(file),
            _ => Err(IolError::BadFdKind { fd, operation }),
        }
    }

    fn resolve_socket(&mut self, pid: Pid, fd: Fd, operation: &'static str) -> Result<ConnId, IolError> {
        let desc = self.resolve_fd(pid, fd)?;
        let object = desc.borrow().object;
        match object {
            FdObject::Socket(id) => Ok(id),
            _ => Err(IolError::BadFdKind { fd, operation }),
        }
    }

    // ---- file descriptors (§3.4: the IOL calls act on any fd) -----------

    /// Opens a file by path, returning a descriptor with offset 0. The
    /// outcome carries the metadata-lookup plus syscall charge.
    ///
    /// # Errors
    ///
    /// [`IolError::NotFound`] when the path does not resolve.
    pub fn open(&mut self, pid: Pid, path: &str) -> IoResult<Fd> {
        let (id, charge) = self.lookup(path);
        let file = id.ok_or(IolError::NotFound)?;
        let fd = self.fds.table(pid).install(FdObject::File(file));
        let out = IoOutcome {
            charge: charge + Charge::us(self.cost.syscall_us),
            ..IoOutcome::default()
        };
        Ok((fd, out))
    }

    /// Installs a descriptor (offset 0) for an already-resolved file —
    /// the bridge for layers that hold [`FileId`]s (workload setup,
    /// benches) into the descriptor world.
    pub fn open_file(&mut self, pid: Pid, file: FileId) -> Fd {
        self.fds.table(pid).install(FdObject::File(file))
    }

    /// Creates a pipe and returns `(read_fd, write_fd)` in `pid`'s table
    /// (both ends in one process, as after `pipe(2)` before `fork`;
    /// hand the ends to other processes with [`Kernel::install_fd`] or
    /// wire two processes directly with [`Kernel::pipe_between`]).
    pub fn pipe_fds(&mut self, pid: Pid, mode: PipeMode) -> (Fd, Fd) {
        let id = self.pipe_create(mode);
        let table = self.fds.table(pid);
        let r = table.install(FdObject::PipeRead(id));
        let w = table.install(FdObject::PipeWrite(id));
        (r, w)
    }

    /// Creates a pipe with its write end in `writer`'s table and its
    /// read end in `reader`'s (the post-`fork` shape of `a | b`).
    /// Returns `(write_fd, read_fd)`.
    pub fn pipe_between(&mut self, writer: Pid, reader: Pid, mode: PipeMode) -> (Fd, Fd) {
        self.pipe_between_inner(writer, reader, mode, None)
    }

    /// Like [`Kernel::pipe_between`], with zero-copy transfers governed
    /// by `acl` (pipes between mutually untrusting domains, §3.10).
    pub fn pipe_between_with_acl(
        &mut self,
        writer: Pid,
        reader: Pid,
        mode: PipeMode,
        acl: Acl,
    ) -> (Fd, Fd) {
        self.pipe_between_inner(writer, reader, mode, Some(acl))
    }

    fn pipe_between_inner(
        &mut self,
        writer: Pid,
        reader: Pid,
        mode: PipeMode,
        acl: Option<Acl>,
    ) -> (Fd, Fd) {
        let id = self.pipe_create_inner(mode, acl);
        let w = self.fds.table(writer).install(FdObject::PipeWrite(id));
        let r = self.fds.table(reader).install(FdObject::PipeRead(id));
        (w, r)
    }

    /// Installs an existing object in `pid`'s descriptor table (the
    /// moral equivalent of inheriting an fd across `fork`/`exec`).
    pub fn install_fd(&mut self, pid: Pid, object: FdObject) -> Fd {
        self.fds.table(pid).install(object)
    }

    /// Installs an existing object at exactly `at` (`dup2`-style
    /// targeting for inherited objects — e.g. parking a pipe end on a
    /// child's stdio number), displacing and (last-reference) closing
    /// whatever was there.
    pub fn install_fd_at(&mut self, pid: Pid, at: Fd, object: FdObject) -> Fd {
        let displaced = self.fds.table(pid).install_at(at, object);
        if let Some(old) = displaced {
            let old_object = old.borrow().object;
            self.finalize_close(old_object);
        }
        at
    }

    /// Duplicates a descriptor (`dup(2)`) onto the lowest free number:
    /// both numbers share one file offset.
    ///
    /// # Errors
    ///
    /// [`IolError::NotOpen`] if `fd` is not open.
    pub fn dup_fd(&mut self, pid: Pid, fd: Fd) -> Result<Fd, IolError> {
        self.fds
            .table(pid)
            .dup(fd)
            .ok_or(IolError::NotOpen { fd })
    }

    /// Duplicates `src` onto exactly `dst` (`dup2(2)`), displacing and
    /// (last-reference) closing whatever was there. Re-plumbing the
    /// stdio triple goes through here, shell-style.
    ///
    /// # Errors
    ///
    /// [`IolError::NotOpen`] if `src` is not open.
    pub fn dup2_fd(&mut self, pid: Pid, src: Fd, dst: Fd) -> Result<Fd, IolError> {
        let displaced = self
            .fds
            .table(pid)
            .dup2(src, dst)
            .ok_or(IolError::NotOpen { fd: src })?;
        if let Some(old) = displaced {
            let object = old.borrow().object;
            self.finalize_close(object);
        }
        Ok(dst)
    }

    /// Closes a descriptor (`close(2)`). When the last descriptor for a
    /// pipe write end disappears (across *all* processes), the pipe is
    /// closed for real and readers see EOF; a socket's last close tears
    /// the connection down.
    ///
    /// # Errors
    ///
    /// [`IolError::NotOpen`] if `fd` is not open (double close).
    pub fn close_fd(&mut self, pid: Pid, fd: Fd) -> Result<(), IolError> {
        let removed = self
            .fds
            .table(pid)
            .close(fd)
            .ok_or(IolError::NotOpen { fd })?;
        let object = removed.borrow().object;
        self.finalize_close(object);
        Ok(())
    }

    /// Applies last-reference close semantics after a descriptor for
    /// `object` was removed or displaced.
    ///
    /// Files have no last-close action, so they skip the registry scan
    /// entirely — the common case (a server's 10k-file open set) closes
    /// in O(log n).
    fn finalize_close(&mut self, object: FdObject) {
        if matches!(object, FdObject::File(_)) {
            return;
        }
        if self.fds.object_referenced(object) {
            return;
        }
        match object {
            FdObject::PipeWrite(id) => self.pipe_close(id),
            FdObject::PipeRead(id) => {
                // The last reader hung up: writers get EPIPE from now
                // on instead of filling a pipe nobody drains.
                if let Some(slot) = self.pipes.get_mut(&id) {
                    slot.reader_gone = true;
                }
            }
            FdObject::Socket(id) => {
                if let Some(sock) = self.sockets.get_mut(&id) {
                    sock.closed = true;
                    sock.inbound.clear();
                }
            }
            FdObject::File(_) => unreachable!("files returned early"),
        }
    }

    /// Repositions a file descriptor (`lseek(2)`), resolving
    /// [`Whence::End`] against the file's metadata. Returns the new
    /// absolute offset.
    ///
    /// # Errors
    ///
    /// [`IolError::NotOpen`] for unknown descriptors,
    /// [`IolError::BadFdKind`] for pipes/sockets (ESPIPE), and
    /// [`IolError::InvalidSeek`] when the resolved position is negative.
    pub fn lseek(&mut self, pid: Pid, fd: Fd, offset: i64, whence: Whence) -> IoResult<u64> {
        let desc = self.resolve_fd(pid, fd)?;
        let mut open = desc.borrow_mut();
        let FdObject::File(file) = open.object else {
            return Err(IolError::BadFdKind {
                fd,
                operation: "lseek",
            });
        };
        let base: u64 = match whence {
            Whence::Set => 0,
            Whence::Cur => open.pos,
            Whence::End => self.store.len(file).unwrap_or(0),
        };
        let target = base as i128 + offset as i128;
        if target < 0 {
            return Err(IolError::InvalidSeek { requested: offset });
        }
        open.pos = target as u64;
        self.metrics.syscalls += 1;
        let out = IoOutcome {
            charge: Charge::us(self.cost.syscall_us),
            ..IoOutcome::default()
        };
        Ok((open.pos, out))
    }

    /// The length of the file behind a descriptor (`fstat(2)`'s
    /// `st_size`).
    ///
    /// # Errors
    ///
    /// [`IolError::NotOpen`] / [`IolError::BadFdKind`] as usual.
    pub fn fd_len(&mut self, pid: Pid, fd: Fd) -> Result<u64, IolError> {
        let file = self.fd_file(pid, fd)?;
        Ok(self.store.len(file).unwrap_or(0))
    }

    /// The [`FileId`] behind a file descriptor — for cache-layer
    /// bookkeeping ([`CacheKey`] pins, the mapped-file cache), never
    /// for I/O.
    ///
    /// # Errors
    ///
    /// [`IolError::NotOpen`] / [`IolError::BadFdKind`] as usual.
    pub fn fd_file(&mut self, pid: Pid, fd: Fd) -> Result<FileId, IolError> {
        self.resolve_file(pid, fd, "file metadata")
    }

    /// The object behind a descriptor (`fstat`-style introspection; the
    /// handle to pass [`Kernel::install_fd`]/[`Kernel::install_fd_at`]
    /// when inheriting descriptors across processes, fork-style).
    ///
    /// # Errors
    ///
    /// [`IolError::NotOpen`] for unknown descriptors.
    pub fn fd_object(&mut self, pid: Pid, fd: Fd) -> Result<FdObject, IolError> {
        let desc = self.resolve_fd(pid, fd)?;
        let object = desc.borrow().object;
        Ok(object)
    }

    /// `IOL_read` on a descriptor: files read at (and advance) the
    /// shared offset; pipe read-ends drain the pipe; sockets drain the
    /// inbound queue. Short (even empty) reads at end-of-stream are
    /// part of the contract.
    ///
    /// # Errors
    ///
    /// [`IolError::NotOpen`] for unknown descriptors;
    /// [`IolError::BadFdKind`] for write-only objects;
    /// [`IolError::WouldBlock`] when a pipe/socket is empty but its
    /// writer is still open; [`IolError::PermissionDenied`] when an
    /// ACL'd pipe refuses the reader's domain.
    pub fn iol_read_fd(&mut self, pid: Pid, fd: Fd, len: u64) -> IoResult<Aggregate> {
        let desc = self.resolve_fd(pid, fd)?;
        let object = desc.borrow().object;
        match object {
            FdObject::File(file) => {
                let pos = desc.borrow().pos;
                let (agg, out) = self.read_file_at(pid, file, pos, len);
                desc.borrow_mut().pos = pos + agg.len();
                Ok((agg, out))
            }
            FdObject::PipeRead(pipe) => {
                let (got, out) = self.pipe_read_inner(pid, pipe, len)?;
                match got {
                    Some(agg) => Ok((agg, out)),
                    // Empty + closed is EOF (an empty read); empty +
                    // open writer is EAGAIN, charged like any trap.
                    None if self.pipes[&pipe].pipe.is_closed() => Ok((Aggregate::empty(), out)),
                    None => Err(IolError::WouldBlock { outcome: out }),
                }
            }
            FdObject::Socket(id) => self.socket_read(pid, fd, id, len),
            FdObject::PipeWrite(_) => Err(IolError::BadFdKind {
                fd,
                operation: "read",
            }),
        }
    }

    /// Drains up to `len` bytes from a socket's inbound queue.
    fn socket_read(&mut self, pid: Pid, _fd: Fd, id: ConnId, len: u64) -> IoResult<Aggregate> {
        let mut out = IoOutcome {
            charge: Charge::us(self.cost.syscall_us),
            ..IoOutcome::default()
        };
        self.metrics.syscalls += 1;
        let sock = self.sockets.get_mut(&id).expect("registered socket");
        let mode = sock.conn.mode();
        let mut agg = Aggregate::empty();
        while agg.len() < len {
            let Some(front) = sock.inbound.front_mut() else {
                break;
            };
            let want = len - agg.len();
            if front.len() <= want {
                agg.append(front);
                sock.inbound.pop_front();
            } else {
                let head = front.range(0, want).expect("in range");
                front.advance(want);
                agg.append(&head);
            }
        }
        if agg.is_empty() {
            // Local teardown or a remote hang-up both end the stream:
            // once the queue is drained, reads return empty (EOF).
            return if sock.closed || sock.peer_closed || len == 0 {
                Ok((agg, out))
            } else {
                Err(IolError::WouldBlock { outcome: out })
            };
        }
        match mode {
            BufferMode::ZeroCopy => {
                // recv by reference: first-time chunk mappings only.
                let pages = self.transfer_to(&agg, pid.domain());
                out.mapped_pages += pages;
                out.charge += self.cost.page_maps(pages);
            }
            BufferMode::Copy => {
                // Conventional recv copies socket-buffer data out.
                let copied = agg.len();
                self.metrics.bytes_copied += copied;
                out.charge += self.cost.copy(copied);
            }
        }
        Ok((agg, out))
    }

    /// `IOL_write` on a descriptor: files replace at (and advance) the
    /// shared offset; pipe write-ends enqueue; sockets run the TCP send
    /// path (zero-copy with checksum caching, or copying — the
    /// descriptor doesn't care, §3.4). Returns bytes accepted; socket
    /// writes carry their [`SendOutcome`] in `outcome.net`.
    ///
    /// # Errors
    ///
    /// [`IolError::NotOpen`] / [`IolError::BadFdKind`] as usual;
    /// [`IolError::Closed`] when writing a closed pipe or socket;
    /// [`IolError::WouldBlock`] when a full pipe accepts nothing;
    /// [`IolError::ShortIo`] (carrying the partial count and its
    /// charge) when a pipe fills mid-write.
    pub fn iol_write_fd(&mut self, pid: Pid, fd: Fd, agg: &Aggregate) -> IoResult<u64> {
        let desc = self.resolve_fd(pid, fd)?;
        let object = desc.borrow().object;
        match object {
            FdObject::File(file) => {
                let pos = desc.borrow().pos;
                let out = self.write_file_at(pid, file, pos, agg);
                desc.borrow_mut().pos = pos + agg.len();
                Ok((agg.len(), out))
            }
            FdObject::PipeWrite(pipe) => {
                let slot = &self.pipes[&pipe];
                if slot.pipe.is_closed() || slot.reader_gone {
                    // Writing with no write end left, or no reader left
                    // to ever drain it, is EPIPE.
                    return Err(IolError::Closed);
                }
                let (accepted, out) = self.pipe_write_inner(pid, pipe, agg);
                if accepted == agg.len() {
                    Ok((accepted, out))
                } else if accepted == 0 {
                    Err(IolError::WouldBlock { outcome: out })
                } else {
                    Err(IolError::ShortIo {
                        done: accepted,
                        outcome: out,
                    })
                }
            }
            FdObject::Socket(id) => {
                let sock = self.sockets.get_mut(&id).expect("registered socket");
                if sock.write_dead() {
                    return Err(IolError::Closed);
                }
                // Nonblocking sockets honor the Tss send-buffer bound:
                // accept only what fits, with `ShortIo` carrying the
                // partial progress (the driver drains the buffer as the
                // simulated wire ACKs it). Blocking sockets model the
                // synchronous write-until-drained path and accept
                // everything, as before.
                let len = agg.len();
                let space = sock.send_space();
                self.metrics.syscalls += 1;
                let out_base = IoOutcome {
                    charge: Charge::us(self.cost.syscall_us),
                    ..IoOutcome::default()
                };
                if space == 0 {
                    return Err(IolError::WouldBlock { outcome: out_base });
                }
                let accept = len.min(space);
                let window = if accept == len {
                    None
                } else {
                    Some(agg.range(0, accept).expect("clamped send window"))
                };
                let sock = self.sockets.get_mut(&id).expect("registered socket");
                let send = sock.conn.send(window.as_ref().unwrap_or(agg), &mut self.cksum);
                if sock.nonblocking {
                    sock.sndbuf_used += accept;
                }
                self.metrics.bytes_checksummed += send.csum_bytes_computed;
                self.metrics.bytes_checksum_cached += send.csum_bytes_cached;
                self.metrics.bytes_copied += send.bytes_copied;
                let out = IoOutcome {
                    net: Some(send),
                    ..out_base
                };
                if accept == len {
                    Ok((accept, out))
                } else {
                    Err(IolError::ShortIo {
                        done: accept,
                        outcome: out,
                    })
                }
            }
            FdObject::PipeRead(_) => Err(IolError::BadFdKind {
                fd,
                operation: "write",
            }),
        }
    }

    /// Positional `IOL_read` (`pread(2)`): reads a file descriptor at
    /// an explicit offset without moving the shared offset.
    ///
    /// # Errors
    ///
    /// [`IolError::NotOpen`] / [`IolError::BadFdKind`] (pipes and
    /// sockets have no positions).
    pub fn iol_pread(&mut self, pid: Pid, fd: Fd, offset: u64, len: u64) -> IoResult<Aggregate> {
        let file = self.resolve_file(pid, fd, "positional file access")?;
        Ok(self.read_file_at(pid, file, offset, len))
    }

    /// Positional `IOL_write` (`pwrite(2)`).
    ///
    /// # Errors
    ///
    /// As [`Kernel::iol_pread`].
    pub fn iol_pwrite(&mut self, pid: Pid, fd: Fd, offset: u64, agg: &Aggregate) -> IoResult<u64> {
        let file = self.resolve_file(pid, fd, "positional file access")?;
        let out = self.write_file_at(pid, file, offset, agg);
        Ok((agg.len(), out))
    }

    /// Backward-compatible copying read on a file descriptor, advancing
    /// the shared offset (§4.2's copy-in/copy-out POSIX veneer).
    ///
    /// # Errors
    ///
    /// As [`Kernel::iol_pread`] — pipes carry copy semantics through
    /// their mode instead.
    pub fn posix_read_fd(&mut self, pid: Pid, fd: Fd, len: u64) -> IoResult<Vec<u8>> {
        let file = self.resolve_file(pid, fd, "posix_read")?;
        let desc = self.resolve_fd(pid, fd)?;
        let pos = desc.borrow().pos;
        let (bytes, out) = self.posix_file_read(pid, file, pos, len);
        desc.borrow_mut().pos = pos + bytes.len() as u64;
        Ok((bytes, out))
    }

    /// Backward-compatible copying write on a file descriptor,
    /// advancing the shared offset.
    ///
    /// # Errors
    ///
    /// As [`Kernel::posix_read_fd`].
    pub fn posix_write_fd(&mut self, pid: Pid, fd: Fd, data: &[u8]) -> IoResult<u64> {
        let file = self.resolve_file(pid, fd, "posix_write")?;
        let desc = self.resolve_fd(pid, fd)?;
        let pos = desc.borrow().pos;
        let out = self.posix_file_write(pid, file, pos, data);
        desc.borrow_mut().pos = pos + data.len() as u64;
        Ok((data.len() as u64, out))
    }

    /// Maps the whole file behind a descriptor (§3.8 `mmap`).
    ///
    /// # Errors
    ///
    /// As [`Kernel::iol_pread`].
    pub fn mmap_fd(&mut self, pid: Pid, fd: Fd) -> IoResult<MmapView> {
        let file = self.resolve_file(pid, fd, "mmap")?;
        Ok(self.file_mmap(pid, file))
    }

    // ---- the stdio console (harness side of fds 0/1/2) ------------------

    /// Writes `data` into `pid`'s stdin console pipe (the harness
    /// playing the terminal); the process reads it at [`Fd::STDIN`].
    ///
    /// # Errors
    ///
    /// [`IolError::WouldBlock`]/[`IolError::ShortIo`] as for any pipe
    /// write when the console buffer fills.
    pub fn feed_stdin(&mut self, pid: Pid, data: &Aggregate) -> IoResult<u64> {
        let console = self.consoles[&pid];
        let slot = &self.pipes[&console.stdin];
        if slot.pipe.is_closed() || slot.reader_gone {
            return Err(IolError::Closed);
        }
        let (accepted, out) = self.pipe_write_inner(pid, console.stdin, data);
        if accepted == data.len() {
            Ok((accepted, out))
        } else if accepted == 0 {
            Err(IolError::WouldBlock { outcome: out })
        } else {
            Err(IolError::ShortIo {
                done: accepted,
                outcome: out,
            })
        }
    }

    /// Drains up to `max` bytes the process wrote to [`Fd::STDOUT`].
    ///
    /// # Errors
    ///
    /// [`IolError::WouldBlock`] when nothing is buffered and the
    /// process still holds its write end.
    pub fn read_stdout(&mut self, pid: Pid, max: u64) -> IoResult<Aggregate> {
        let console = self.consoles[&pid];
        self.console_read(pid, console.stdout, max)
    }

    /// Drains up to `max` bytes the process wrote to [`Fd::STDERR`].
    ///
    /// # Errors
    ///
    /// As [`Kernel::read_stdout`].
    pub fn read_stderr(&mut self, pid: Pid, max: u64) -> IoResult<Aggregate> {
        let console = self.consoles[&pid];
        self.console_read(pid, console.stderr, max)
    }

    fn console_read(&mut self, pid: Pid, pipe: PipeId, max: u64) -> IoResult<Aggregate> {
        let (got, out) = self.pipe_read_inner(pid, pipe, max)?;
        match got {
            Some(agg) => Ok((agg, out)),
            None if self.pipes[&pipe].pipe.is_closed() => Ok((Aggregate::empty(), out)),
            None => Err(IolError::WouldBlock { outcome: out }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iolite_net::{DEFAULT_MSS, DEFAULT_TSS};

    fn kernel() -> Kernel {
        Kernel::new(CostModel::pentium_ii_333())
    }

    #[test]
    fn spawn_installs_the_stdio_triple() {
        let mut k = kernel();
        let pid = k.spawn("app");
        // fds 0/1/2 are live; the first user object lands at 3.
        let f = k.create_file("/f", b"x");
        let fd = k.open_file(pid, f);
        assert_eq!(fd, Fd(3));
        // STDOUT round-trips through the console.
        let pool = k.process(pid).pool().clone();
        let msg = Aggregate::from_bytes(&pool, b"hello, console");
        let (n, _) = k.iol_write_fd(pid, Fd::STDOUT, &msg).unwrap();
        assert_eq!(n, 14);
        let (got, _) = k.read_stdout(pid, 100).unwrap();
        assert_eq!(got.to_vec(), b"hello, console");
        // STDIN: the harness feeds, the process reads.
        let input = Aggregate::from_bytes(&pool, b"typed");
        k.feed_stdin(pid, &input).unwrap();
        let (read, _) = k.iol_read_fd(pid, Fd::STDIN, 100).unwrap();
        assert_eq!(read.to_vec(), b"typed");
        // STDERR is distinct from STDOUT.
        let err = Aggregate::from_bytes(&pool, b"oops");
        k.iol_write_fd(pid, Fd::STDERR, &err).unwrap();
        assert!(matches!(
            k.read_stdout(pid, 100),
            Err(IolError::WouldBlock { .. })
        ));
        assert_eq!(k.read_stderr(pid, 100).unwrap().0.to_vec(), b"oops");
    }

    #[test]
    fn closed_fd_numbers_are_reused_lowest_first() {
        let mut k = kernel();
        let pid = k.spawn("app");
        let f = k.create_file("/f", b"x");
        let a = k.open_file(pid, f);
        let b = k.open_file(pid, f);
        assert_eq!((a, b), (Fd(3), Fd(4)));
        k.close_fd(pid, a).unwrap();
        assert_eq!(k.open_file(pid, f), Fd(3), "lowest free number, per POSIX");
        assert_eq!(k.open_file(pid, f), Fd(5));
    }

    #[test]
    fn iol_read_hits_cache_second_time() {
        let mut k = kernel();
        let pid = k.spawn("app");
        let f = k.create_synthetic_file("/f", 100_000, 1);
        let fd = k.open_file(pid, f);
        let (a1, o1) = k.iol_pread(pid, fd, 0, 100_000).unwrap();
        assert!(!o1.cache_hit);
        assert!(o1.disk_bytes == 100_000 && o1.disk_time > SimTime::ZERO);
        let (a2, o2) = k.iol_pread(pid, fd, 0, 100_000).unwrap();
        assert!(o2.cache_hit);
        assert_eq!(o2.disk_bytes, 0);
        assert!(a1.content_eq(&a2));
        // Same physical copy.
        assert!(a1.slice_at(0).same_buffer(a2.slice_at(0)));
    }

    #[test]
    fn iol_read_short_at_eof() {
        let mut k = kernel();
        let pid = k.spawn("app");
        let f = k.create_file("/f", b"abcdef");
        let fd = k.open_file(pid, f);
        let (agg, _) = k.iol_pread(pid, fd, 4, 100).unwrap();
        assert_eq!(agg.to_vec(), b"ef");
        let (empty, _) = k.iol_pread(pid, fd, 100, 10).unwrap();
        assert!(empty.is_empty());
    }

    #[test]
    fn mapping_cost_amortizes() {
        let mut k = kernel();
        let pid = k.spawn("app");
        let f = k.create_synthetic_file("/f", 64 * 1024, 1);
        let fd = k.open_file(pid, f);
        let (_, o1) = k.iol_pread(pid, fd, 0, 64 * 1024).unwrap();
        assert!(o1.mapped_pages > 0);
        let (_, o2) = k.iol_pread(pid, fd, 0, 64 * 1024).unwrap();
        assert_eq!(o2.mapped_pages, 0, "second read rides warm mappings");
        assert!(o2.charge.time < o1.charge.time);
    }

    #[test]
    fn posix_read_copies_iol_read_does_not() {
        let mut k = kernel();
        let pid = k.spawn("app");
        let f = k.create_synthetic_file("/f", 10_000, 1);
        let fd = k.open_file(pid, f);
        let (data, _) = k.posix_read_fd(pid, fd, 10_000).unwrap();
        assert_eq!(k.metrics.bytes_copied, 10_000);
        let (agg, _) = k.iol_pread(pid, fd, 0, 10_000).unwrap();
        assert_eq!(k.metrics.bytes_copied, 10_000, "IOL_read adds no copy");
        assert_eq!(agg.to_vec(), data);
    }

    #[test]
    fn iol_write_preserves_reader_snapshots() {
        let mut k = kernel();
        let pid = k.spawn("app");
        let f = k.create_file("/f", b"old-contents");
        let fd = k.open_file(pid, f);
        let (snapshot, _) = k.iol_pread(pid, fd, 0, 100).unwrap();
        let patch = Aggregate::from_bytes(k.process(pid).pool(), b"NEW");
        k.iol_pwrite(pid, fd, 0, &patch).unwrap();
        // Reader's snapshot unchanged; store and cache updated.
        assert_eq!(snapshot.to_vec(), b"old-contents");
        assert_eq!(k.store.read(f, 0, 100).unwrap(), b"NEW-contents");
        let (now, o) = k.iol_pread(pid, fd, 0, 100).unwrap();
        assert!(o.cache_hit);
        assert_eq!(now.to_vec(), b"NEW-contents");
    }

    #[test]
    fn lookup_uses_metadata_cache() {
        let mut k = kernel();
        k.create_file("/x", b"1");
        let (id1, c1) = k.lookup("/x");
        let (id2, c2) = k.lookup("/x");
        assert_eq!(id1, id2);
        assert!(c2.time < c1.time, "metadata hit is cheaper");
        assert_eq!(k.lookup("/missing").0, None);
    }

    /// Regression (pin-steal interleaving across the kernel surface):
    /// a transmission pins the key, `IOL_write` replaces the entry, a
    /// second transmission pins the key, then the first transmission's
    /// deferred unpin fires. The second transmission's data must stay
    /// referenced.
    #[test]
    fn iol_write_replacement_keeps_transmission_pins() {
        let mut k = kernel();
        let pid = k.spawn("server");
        let f = k.create_file("/doc", b"version-1");
        let fd = k.open_file(pid, f);
        let key = CacheKey::whole(f);
        // Transmission A: read + pin (the serve path's pin lifecycle).
        let (_snap, _) = k.iol_pread(pid, fd, 0, 100).unwrap();
        k.cache.pin(&key);
        // A write replaces the cached entry mid-transmission.
        let patch = Aggregate::from_bytes(k.process(pid).pool(), b"version-2");
        k.iol_pwrite(pid, fd, 0, &patch).unwrap();
        // Transmission B starts on the new snapshot.
        let (_snap2, o2) = k.iol_pread(pid, fd, 0, 100).unwrap();
        assert!(o2.cache_hit);
        k.cache.pin(&key);
        // Transmission A drains: its deferred unpin fires.
        k.cache.unpin(&key);
        assert_eq!(k.cache.pins(&key), 1, "B's pin must survive A's unpin");
        // Under total memory pressure the in-flight entry is evicted
        // only as a last resort (counted as a pinned eviction).
        let before = k.cache.stats().pinned_evictions;
        k.cache.set_budget(0);
        assert_eq!(k.cache.stats().pinned_evictions, before + 1);
    }

    #[test]
    fn cache_budget_respects_memory_pressure() {
        let mut k = kernel();
        let pid = k.spawn("app");
        let f = k.create_synthetic_file("/f", 1 << 20, 1);
        let fd = k.open_file(pid, f);
        k.iol_pread(pid, fd, 0, 1 << 20).unwrap();
        assert!(k.cache.resident_bytes() > 0);
        // Reserve (almost) all remaining memory: cache must shrink.
        let avail = k.physmem.available();
        k.physmem
            .reserve(MemAccount::SocketCopies, avail + (1 << 20));
        k.rebalance_cache();
        assert_eq!(k.cache.resident_bytes(), 0, "budget squeeze evicts all");
    }

    #[test]
    fn zero_copy_pipe_transfer_maps_once() {
        let mut k = kernel();
        let a = k.spawn("producer");
        let b = k.spawn("consumer");
        let (w, r) = k.pipe_between(a, b, PipeMode::ZeroCopy);
        let pool = k.process(a).pool().clone();
        // First message: fresh chunk, reader pays mapping.
        let m1 = Aggregate::from_bytes(&pool, &[1u8; 64 * 1024]);
        k.iol_write_fd(a, w, &m1).unwrap();
        drop(m1);
        let (got, o1) = k.iol_read_fd(b, r, u64::MAX).unwrap();
        assert_eq!(got.len(), 64 * 1024);
        assert!(o1.mapped_pages > 0);
        drop(got);
        // Recycled chunk: no new mappings (the §3.2 fast path).
        let m2 = Aggregate::from_bytes(&pool, &[2u8; 64 * 1024]);
        k.iol_write_fd(a, w, &m2).unwrap();
        drop(m2);
        let (_, o2) = k.iol_read_fd(b, r, u64::MAX).unwrap();
        assert_eq!(o2.mapped_pages, 0);
        assert_eq!(k.metrics.bytes_copied, 0);
    }

    #[test]
    fn copy_pipe_charges_copies() {
        let mut k = kernel();
        let a = k.spawn("producer");
        let b = k.spawn("consumer");
        let (w, r) = k.pipe_between(a, b, PipeMode::Copy);
        let pool = k.process(a).pool().clone();
        let msg = Aggregate::from_bytes(&pool, &[1u8; 1000]);
        let (n, wout) = k.iol_write_fd(a, w, &msg).unwrap();
        assert_eq!(n, 1000);
        assert!(wout.charge.time > Charge::us(5.0).time);
        let (_, rout) = k.iol_read_fd(b, r, u64::MAX).unwrap();
        assert!(rout.charge.time > Charge::us(5.0).time);
        assert_eq!(k.metrics.bytes_copied, 2000);
    }

    #[test]
    fn pipe_write_reports_short_io_and_close_gives_eof() {
        let mut k = kernel();
        let a = k.spawn("producer");
        let b = k.spawn("consumer");
        let (w, r) = k.pipe_between(a, b, PipeMode::ZeroCopy);
        let pool = k.process(a).pool().clone();
        // 100KB into a 64KB pipe: partial progress is carried.
        let big = Aggregate::from_bytes(&pool, &[7u8; 100 * 1024]);
        let err = k.iol_write_fd(a, w, &big).unwrap_err();
        let IolError::ShortIo { done, outcome } = err else {
            panic!("expected ShortIo, got {err:?}");
        };
        assert_eq!(done, 64 * 1024);
        assert!(outcome.charge.time > SimTime::ZERO);
        // Full pipe accepts nothing: EAGAIN, still charged as a trap.
        let blocked = k.iol_write_fd(a, w, &big).unwrap_err();
        let IolError::WouldBlock { outcome } = blocked else {
            panic!("expected WouldBlock, got {blocked:?}");
        };
        assert!(outcome.charge.time > SimTime::ZERO);
        // Drain, close the write end; the reader sees data then EOF.
        let (first, _) = k.iol_read_fd(b, r, u64::MAX).unwrap();
        assert_eq!(first.len(), 64 * 1024);
        k.close_fd(a, w).unwrap();
        let (eof, _) = k.iol_read_fd(b, r, 100).unwrap();
        assert!(eof.is_empty(), "EOF after last write end closes");
        // A fresh descriptor to the closed pipe's write end is refused.
        let FdObject::PipeRead(id) = k.fd_object(b, r).unwrap() else {
            panic!("read end resolves to a pipe");
        };
        let w2 = k.install_fd(a, FdObject::PipeWrite(id));
        assert_eq!(k.iol_write_fd(a, w2, &big), Err(IolError::Closed));
    }

    #[test]
    fn pipe_eof_requires_last_writer_to_close() {
        let mut k = kernel();
        let a = k.spawn("producer");
        let b = k.spawn("consumer");
        let (w, r) = k.pipe_between(a, b, PipeMode::ZeroCopy);
        let w_dup = k.dup_fd(a, w).unwrap();
        k.close_fd(a, w).unwrap();
        // A write end remains: the empty pipe is EAGAIN, not EOF.
        assert!(matches!(
            k.iol_read_fd(b, r, 10),
            Err(IolError::WouldBlock { .. })
        ));
        k.close_fd(a, w_dup).unwrap();
        let (eof, _) = k.iol_read_fd(b, r, 10).unwrap();
        assert!(eof.is_empty());
    }

    #[test]
    fn mmap_returns_working_view() {
        let mut k = kernel();
        let pid = k.spawn("app");
        let f = k.create_synthetic_file("/f", 10_000, 3);
        let fd = k.open_file(pid, f);
        let (mut view, o) = k.mmap_fd(pid, fd).unwrap();
        assert_eq!(view.len(), 10_000);
        assert!(o.mapped_pages > 0);
        let direct = k.store.read(f, 0, 10_000).unwrap();
        assert_eq!(view.read_all(), direct);
    }

    #[test]
    fn fd_reads_advance_shared_offsets() {
        let mut k = kernel();
        let pid = k.spawn("app");
        k.create_file("/seq", b"abcdefghij");
        let (fd, _) = k.open(pid, "/seq").unwrap();
        let (first, _) = k.iol_read_fd(pid, fd, 4).unwrap();
        assert_eq!(first.to_vec(), b"abcd");
        // A dup shares the offset.
        let dup = k.dup_fd(pid, fd).unwrap();
        let (second, _) = k.iol_read_fd(pid, dup, 4).unwrap();
        assert_eq!(second.to_vec(), b"efgh");
        let (third, _) = k.iol_read_fd(pid, fd, 4).unwrap();
        assert_eq!(third.to_vec(), b"ij");
        // lseek rewinds.
        assert_eq!(k.lseek(pid, fd, 0, Whence::Set).unwrap().0, 0);
        let (again, _) = k.iol_read_fd(pid, dup, 2).unwrap();
        assert_eq!(again.to_vec(), b"ab");
    }

    #[test]
    fn lseek_whence_resolves_cur_and_end() {
        let mut k = kernel();
        let pid = k.spawn("app");
        k.create_file("/f", b"0123456789");
        let (fd, _) = k.open(pid, "/f").unwrap();
        assert_eq!(k.lseek(pid, fd, 4, Whence::Set).unwrap().0, 4);
        assert_eq!(k.lseek(pid, fd, 3, Whence::Cur).unwrap().0, 7);
        assert_eq!(k.lseek(pid, fd, -5, Whence::Cur).unwrap().0, 2);
        // End resolves against file metadata.
        assert_eq!(k.lseek(pid, fd, -2, Whence::End).unwrap().0, 8);
        let (tail, _) = k.iol_read_fd(pid, fd, 100).unwrap();
        assert_eq!(tail.to_vec(), b"89");
        // Past-EOF is allowed (sparse seek); negative is EINVAL.
        assert_eq!(k.lseek(pid, fd, 5, Whence::End).unwrap().0, 15);
        assert_eq!(
            k.lseek(pid, fd, -11, Whence::Set),
            Err(IolError::InvalidSeek { requested: -11 })
        );
        // ESPIPE for non-files.
        let (_, r) = k.pipe_fds(pid, PipeMode::Copy);
        assert!(matches!(
            k.lseek(pid, r, 0, Whence::Set),
            Err(IolError::BadFdKind { .. })
        ));
    }

    #[test]
    fn fd_pipes_and_bad_fds() {
        let mut k = kernel();
        let a = k.spawn("producer");
        let b = k.spawn("consumer");
        let (w, r_in_b) = k.pipe_between(a, b, PipeMode::ZeroCopy);
        let pool = k.process(a).pool().clone();
        let msg = Aggregate::from_bytes(&pool, b"through the fd layer");
        let (n, _) = k.iol_write_fd(a, w, &msg).unwrap();
        assert_eq!(n, 20);
        let (got, _) = k.iol_read_fd(b, r_in_b, 100).unwrap();
        assert_eq!(got.to_vec(), b"through the fd layer");
        // Wrong-end access and unknown fds fail precisely.
        assert!(matches!(
            k.iol_read_fd(a, w, 10),
            Err(IolError::BadFdKind { .. })
        ));
        assert!(matches!(
            k.iol_write_fd(b, r_in_b, &msg),
            Err(IolError::BadFdKind { .. })
        ));
        assert!(matches!(
            k.iol_read_fd(a, Fd(999), 10),
            Err(IolError::NotOpen { fd: Fd(999) })
        ));
        // Opening a missing path is ENOENT.
        assert_eq!(k.open(a, "/nope"), Err(IolError::NotFound));
    }

    #[test]
    fn fd_file_writes_land_at_the_offset() {
        let mut k = kernel();
        let pid = k.spawn("app");
        k.create_file("/f", b"0123456789");
        let (fd, _) = k.open(pid, "/f").unwrap();
        k.lseek(pid, fd, 4, Whence::Set).unwrap();
        let pool = k.process(pid).pool().clone();
        let patch = Aggregate::from_bytes(&pool, b"XY");
        let (n, _) = k.iol_write_fd(pid, fd, &patch).unwrap();
        assert_eq!(n, 2);
        let file = k.lookup("/f").0.unwrap();
        assert_eq!(k.store.read(file, 0, 20).unwrap(), b"0123XY6789");
        // The offset advanced past the write.
        let (rest, _) = k.iol_read_fd(pid, fd, 10).unwrap();
        assert_eq!(rest.to_vec(), b"6789");
    }

    #[test]
    fn socket_fd_runs_the_tcp_send_path() {
        let mut k = kernel();
        let pid = k.spawn("server");
        let sock = k.socket_create(pid, BufferMode::ZeroCopy, DEFAULT_MSS, DEFAULT_TSS);
        let pool = k.process(pid).pool().clone();
        let payload = Aggregate::from_bytes(&pool, &[7u8; 10_000]);
        let (n, out) = k.iol_write_fd(pid, sock, &payload).unwrap();
        assert_eq!(n, 10_000);
        let send = out.net.expect("socket writes carry SendOutcome");
        assert_eq!(send.payload_bytes, 10_000);
        assert_eq!(send.csum_bytes_computed, 10_000);
        assert_eq!(send.bytes_copied, 0);
        // Second transmission rides the checksum cache (§3.9), exactly
        // as a direct TcpConn::send would.
        let (_, out2) = k.iol_write_fd(pid, sock, &payload).unwrap();
        let send2 = out2.net.unwrap();
        assert_eq!(send2.csum_bytes_computed, 0);
        assert_eq!(send2.csum_bytes_cached, 10_000);
        assert_eq!(k.metrics.bytes_checksum_cached, 10_000);
        // Window-rate math is reachable through the registry.
        assert!(k.socket(pid, sock).unwrap().window_rate(0.0).is_infinite());
    }

    #[test]
    fn socket_fd_reads_drain_delivered_data() {
        let mut k = kernel();
        let pid = k.spawn("server");
        let sock = k.socket_create(pid, BufferMode::ZeroCopy, DEFAULT_MSS, DEFAULT_TSS);
        // Nothing delivered yet: EAGAIN.
        assert!(matches!(
            k.iol_read_fd(pid, sock, 10),
            Err(IolError::WouldBlock { .. })
        ));
        let pool = k.process(pid).pool().clone();
        k.socket_deliver(pid, sock, Aggregate::from_bytes(&pool, b"GET / HTTP/1.0"))
            .unwrap();
        let (head, _) = k.iol_read_fd(pid, sock, 5).unwrap();
        assert_eq!(head.to_vec(), b"GET /");
        let (rest, _) = k.iol_read_fd(pid, sock, 100).unwrap();
        assert_eq!(rest.to_vec(), b" HTTP/1.0");
        // Close tears the connection down: reads EOF, writes EPIPE.
        k.close_fd(pid, sock).unwrap();
        let err = k.iol_read_fd(pid, sock, 10).unwrap_err();
        assert_eq!(err, IolError::NotOpen { fd: sock });
    }

    #[test]
    fn socket_close_rejects_further_writes_via_other_handles() {
        let mut k = kernel();
        let a = k.spawn("a");
        let b = k.spawn("b");
        let sock = k.socket_create(a, BufferMode::ZeroCopy, DEFAULT_MSS, DEFAULT_TSS);
        // Hand the socket to b (fork-style inheritance), then close every
        // descriptor: the connection itself tears down.
        let obj = FdObject::Socket(ConnId(1));
        let sock_in_b = k.install_fd(b, obj);
        k.close_fd(a, sock).unwrap();
        // b's handle still works (the connection lives while referenced).
        let pool = k.process(b).pool().clone();
        let msg = Aggregate::from_bytes(&pool, b"still up");
        assert!(k.iol_write_fd(b, sock_in_b, &msg).is_ok());
        k.close_fd(b, sock_in_b).unwrap();
        // Re-acquiring a descriptor to the dead connection sees EPIPE.
        let zombie = k.install_fd(a, obj);
        assert_eq!(k.iol_write_fd(a, zombie, &msg), Err(IolError::Closed));
    }

    #[test]
    fn writer_gets_epipe_when_last_reader_closes() {
        let mut k = kernel();
        let a = k.spawn("producer");
        let b = k.spawn("consumer");
        let (w, r) = k.pipe_between(a, b, PipeMode::ZeroCopy);
        let r_dup = k.dup_fd(b, r).unwrap();
        let pool = k.process(a).pool().clone();
        let msg = Aggregate::from_bytes(&pool, b"into the void?");
        // A reader remains: writes proceed.
        k.close_fd(b, r).unwrap();
        assert!(k.iol_write_fd(a, w, &msg).is_ok());
        // The last reader hangs up: EPIPE, not an unbounded buffer.
        k.close_fd(b, r_dup).unwrap();
        assert_eq!(k.iol_write_fd(a, w, &msg), Err(IolError::Closed));
    }

    #[test]
    fn install_fd_at_targets_exact_numbers_with_close_semantics() {
        let mut k = kernel();
        let a = k.spawn("parent");
        let b = k.spawn("child");
        let (w, r) = k.pipe_between(a, b, PipeMode::ZeroCopy);
        // Park the child's read end on its stdin number, fork/exec
        // style; the displaced console description closes cleanly.
        let r_pipe = pipe_of(&mut k, b, r);
        assert_eq!(
            k.install_fd_at(b, Fd::STDIN, FdObject::PipeRead(r_pipe)),
            Fd::STDIN
        );
        let pool = k.process(a).pool().clone();
        let msg = Aggregate::from_bytes(&pool, b"execve inherited");
        k.iol_write_fd(a, w, &msg).unwrap();
        assert_eq!(
            k.iol_read_fd(b, Fd::STDIN, 100).unwrap().0.to_vec(),
            b"execve inherited"
        );
        // Displacing the last descriptor of a pipe's write end closes
        // the pipe for real.
        let (w2, r2) = k.pipe_between(a, b, PipeMode::ZeroCopy);
        let r2_pipe = pipe_of(&mut k, b, r2);
        k.install_fd_at(a, w2, FdObject::PipeRead(r2_pipe));
        let (eof, _) = k.iol_read_fd(b, r2, 10).unwrap();
        assert!(eof.is_empty(), "write end displaced away => EOF");
    }

    /// Test helper: the PipeId behind a pipe-end descriptor.
    fn pipe_of(k: &mut Kernel, pid: Pid, fd: Fd) -> PipeId {
        match k.fd_object(pid, fd).unwrap() {
            FdObject::PipeRead(id) | FdObject::PipeWrite(id) => id,
            other => panic!("not a pipe end: {other:?}"),
        }
    }

    #[test]
    fn dup2_replumbs_stdout_shell_style() {
        let mut k = kernel();
        let a = k.spawn("producer");
        let b = k.spawn("consumer");
        let (w, r) = k.pipe_between(a, b, PipeMode::ZeroCopy);
        // a's stdout now points at the pipe; b's stdin at its read end.
        k.dup2_fd(a, w, Fd::STDOUT).unwrap();
        k.dup2_fd(b, r, Fd::STDIN).unwrap();
        let pool = k.process(a).pool().clone();
        let msg = Aggregate::from_bytes(&pool, b"a | b");
        k.iol_write_fd(a, Fd::STDOUT, &msg).unwrap();
        let (got, _) = k.iol_read_fd(b, Fd::STDIN, 100).unwrap();
        assert_eq!(got.to_vec(), b"a | b");
    }

    #[test]
    fn pageout_trigger_evicts_under_cache_heavy_replacement() {
        let mut k = kernel();
        let pid = k.spawn("app");
        // Fill the cache, then squeeze it so replacements are dominated
        // by cached-I/O pages.
        for i in 0..8 {
            let f = k.create_synthetic_file(&format!("/f{i}"), 1 << 20, i);
            let fd = k.open_file(pid, f);
            k.iol_pread(pid, fd, 0, 1 << 20).unwrap();
        }
        let resident_before = k.cache.resident_bytes();
        assert!(resident_before > 0);
        let squeeze = k.physmem.available() + resident_before / 2;
        k.physmem.reserve(MemAccount::SocketCopies, squeeze);
        k.rebalance_cache();
        // The daemon saw cached-I/O replacements; light "other" traffic
        // must now trigger the half rule.
        assert!(k.pageout.total_cached_io() > 0);
        let evicted = k.vm_pressure(1);
        assert!(evicted, "majority cached-I/O traffic must evict");
        assert!(k.pageout.evictions() >= 1);
        assert!(k.pageout.backing_writes() >= 1);
        // Heavy non-cache pressure resets the balance: no more evictions.
        let again = k.vm_pressure(10_000);
        assert!(!again, "other-page traffic dominates now");
    }

    #[test]
    fn nonblocking_socket_bounds_the_send_buffer() {
        let mut k = kernel();
        let pid = k.spawn("server");
        let sock = k.socket_create(pid, BufferMode::ZeroCopy, DEFAULT_MSS, 64 * 1024);
        k.set_nonblocking(pid, sock, true).unwrap();
        let pool = k.process(pid).pool().clone();
        // 100KB into a 64KB send buffer: partial progress is carried.
        let big = Aggregate::from_bytes(&pool, &[3u8; 100 * 1024]);
        let err = k.iol_write_fd(pid, sock, &big).unwrap_err();
        let IolError::ShortIo { done, outcome } = err else {
            panic!("expected ShortIo, got {err:?}");
        };
        assert_eq!(done, 64 * 1024);
        let send = outcome.net.expect("partial sends still carry accounting");
        assert_eq!(send.payload_bytes, 64 * 1024);
        assert_eq!(k.socket_space(pid, sock).unwrap(), 0);
        // Full buffer accepts nothing: EAGAIN, still charged as a trap.
        assert!(matches!(
            k.iol_write_fd(pid, sock, &big),
            Err(IolError::WouldBlock { .. })
        ));
        // The wire ACKs half: exactly that much fits again.
        assert_eq!(k.socket_drain(pid, sock, 32 * 1024).unwrap(), 32 * 1024);
        assert_eq!(k.socket_space(pid, sock).unwrap(), 32 * 1024);
        let rest = big.range(done, 32 * 1024).unwrap();
        let (n, _) = k.iol_write_fd(pid, sock, &rest).unwrap();
        assert_eq!(n, 32 * 1024);
        assert_eq!(k.socket_unacked(pid, sock).unwrap(), 64 * 1024);
        // Blocking sockets are unaffected by the bound.
        let blocking = k.socket_create(pid, BufferMode::ZeroCopy, DEFAULT_MSS, 1024);
        let (n, _) = k.iol_write_fd(pid, blocking, &big).unwrap();
        assert_eq!(n, big.len());
    }

    #[test]
    fn poll_reports_pipe_and_socket_readiness() {
        use crate::poll::PollFd;
        let mut k = kernel();
        let a = k.spawn("producer");
        let b = k.spawn("consumer");
        let (w, r) = k.pipe_between(a, b, PipeMode::ZeroCopy);
        // Empty pipe: writer writable, reader pending.
        let (ev, out) = k.iol_poll(a, &[PollFd::writable(w)]).unwrap();
        assert!(ev[0].writable && !ev[0].epipe);
        assert!(out.charge.time > SimTime::ZERO, "poll is charged");
        let (ev, _) = k.iol_poll(b, &[PollFd::readable(r)]).unwrap();
        assert!(!ev[0].readable && !ev[0].eof);
        // Data buffered: reader readable.
        let pool = k.process(a).pool().clone();
        k.iol_write_fd(a, w, &Aggregate::from_bytes(&pool, b"x")).unwrap();
        let (ev, _) = k.iol_poll(b, &[PollFd::readable(r)]).unwrap();
        assert!(ev[0].readable);
        // Sockets: pending until delivery, readable after.
        let sock = k.socket_create(a, BufferMode::ZeroCopy, DEFAULT_MSS, DEFAULT_TSS);
        let (ev, _) = k.iol_poll(a, &[PollFd::readable(sock)]).unwrap();
        assert!(!ev[0].readable && ev[0].writable);
        k.socket_deliver(a, sock, Aggregate::from_bytes(&pool, b"req"))
            .unwrap();
        let (ev, _) = k.iol_poll(a, &[PollFd::readable(sock)]).unwrap();
        assert!(ev[0].readable);
        // Unknown fds report POLLNVAL without failing the scan.
        let (ev, _) = k
            .iol_poll(a, &[PollFd::readable(Fd(999)), PollFd::writable(w)])
            .unwrap();
        assert!(ev[0].invalid && ev[1].writable);
    }

    #[test]
    fn poll_sees_peer_close_as_readiness() {
        use crate::poll::PollFd;
        let mut k = kernel();
        let pid = k.spawn("server");
        let sock = k.socket_create(pid, BufferMode::ZeroCopy, DEFAULT_MSS, DEFAULT_TSS);
        let pool = k.process(pid).pool().clone();
        k.socket_deliver(pid, sock, Aggregate::from_bytes(&pool, b"bye"))
            .unwrap();
        k.socket_peer_close(pid, sock).unwrap();
        // Undrained data is still readable; EOF only after the drain.
        let (ev, _) = k.iol_poll(pid, &[PollFd::readable(sock)]).unwrap();
        assert!(ev[0].readable && !ev[0].eof && ev[0].epipe);
        let (got, _) = k.iol_read_fd(pid, sock, 100).unwrap();
        assert_eq!(got.to_vec(), b"bye");
        let (ev, _) = k.iol_poll(pid, &[PollFd::readable(sock)]).unwrap();
        assert!(ev[0].eof && !ev[0].readable);
        let (eof, _) = k.iol_read_fd(pid, sock, 100).unwrap();
        assert!(eof.is_empty(), "peer-closed socket reads EOF after drain");
        // Writes are EPIPE, as the epipe bit promised.
        let msg = Aggregate::from_bytes(&pool, b"late");
        assert_eq!(k.iol_write_fd(pid, sock, &msg), Err(IolError::Closed));
        // Delivery after FIN is refused too.
        assert_eq!(
            k.socket_deliver(pid, sock, Aggregate::from_bytes(&pool, b"?")),
            Err(IolError::Closed)
        );
        // The conventional accounting-only send path and segment
        // materialization refuse a peer-closed socket the same way the
        // descriptor write does.
        let copy_sock = k.socket_create(pid, BufferMode::Copy, DEFAULT_MSS, DEFAULT_TSS);
        k.socket_peer_close(pid, copy_sock).unwrap();
        assert_eq!(
            k.socket_send_accounted(pid, copy_sock, 100),
            Err(IolError::Closed)
        );
        // And a dead peer never ACKs: drains fail rather than
        // pretending the buffer emptied.
        assert_eq!(k.socket_drain(pid, sock, 10), Err(IolError::Closed));
        assert!(matches!(
            k.socket_transmit_segments(pid, copy_sock, &msg),
            Err(IolError::Closed)
        ));
    }

    #[test]
    fn clock_and_charging() {
        let mut k = kernel();
        assert_eq!(k.now(), SimTime::ZERO);
        k.charge(CostCategory::Copy, Charge::us(100.0));
        k.advance(SimTime::from_us(50.0));
        assert_eq!(k.now(), SimTime::from_us(150.0));
        assert_eq!(
            k.metrics.time_in(CostCategory::Copy),
            SimTime::from_us(100.0)
        );
        k.reset_clock();
        assert_eq!(k.now(), SimTime::ZERO);
    }
}

//! Processes: protection domains with default buffer pools.
//!
//! Each process is a protection domain (§3.3). A process gets a default
//! IO-Lite allocation pool whose ACL contains just that process (plus
//! the kernel); `IOL_create_pool` makes additional pools — the paper's
//! Web server gives "the server process and every CGI application
//! instance ... separate buffer pools with different ACLs" (§3.10).

use iolite_buf::{Acl, BufferPool, DomainId, PoolId};

/// A process identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Pid(pub u32);

impl Pid {
    /// The protection domain this process runs in.
    pub fn domain(self) -> DomainId {
        DomainId(self.0)
    }
}

/// One simulated process.
#[derive(Debug)]
pub struct Process {
    pid: Pid,
    name: String,
    default_pool: BufferPool,
}

impl Process {
    /// Creates a process with a fresh single-domain pool.
    pub(crate) fn new(pid: Pid, name: String, pool_id: PoolId, chunk_size: usize) -> Self {
        let pool = BufferPool::new(pool_id, Acl::with_domain(pid.domain()), chunk_size);
        Process {
            pid,
            name,
            default_pool: pool,
        }
    }

    /// The process id.
    pub fn pid(&self) -> Pid {
        self.pid
    }

    /// The process name (diagnostics).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The process's default allocation pool.
    pub fn pool(&self) -> &BufferPool {
        &self.default_pool
    }

    /// Deep-forks the process for a kernel-state snapshot (the default
    /// pool forks through the snapshot's shared [`iolite_buf::PoolForker`]).
    pub(crate) fn fork(&self, forker: &mut iolite_buf::PoolForker) -> Process {
        Process {
            pid: self.pid,
            name: self.name.clone(),
            default_pool: self.default_pool.fork(forker),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pid_maps_to_domain() {
        assert_eq!(Pid(7).domain(), DomainId(7));
    }

    #[test]
    fn process_pool_acl_is_private() {
        let p = Process::new(Pid(3), "srv".into(), PoolId(1), 64 * 1024);
        assert!(p.pool().acl().allows(DomainId(3)));
        assert!(!p.pool().acl().allows(DomainId(4)));
        assert_eq!(p.name(), "srv");
        assert_eq!(p.pid(), Pid(3));
    }
}

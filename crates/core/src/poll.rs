//! Descriptor readiness: the kernel half of an event-driven server.
//!
//! The paper's fast servers (Flash, Flash-Lite, §5/§6) are *event
//! driven*: one process multiplexes thousands of nonblocking
//! descriptors, acting only on those the kernel reports ready. This
//! module defines the vocabulary of that report — what a caller asks
//! about ([`Interest`], [`PollFd`]) and what the kernel answers
//! ([`Readiness`]) — while [`Kernel::iol_poll`] implements the scan
//! itself, charged through the cost model like any other trap.
//!
//! Semantics follow `poll(2)`:
//!
//! * `readable` — a read would return data now (bytes buffered in a
//!   pipe, delivered payload queued on a socket). Regular files are
//!   always readable.
//! * `writable` — a write would accept at least one byte (pipe or
//!   nonblocking-socket buffer space). Regular files are always
//!   writable.
//! * `eof` — the stream is finished: the peer is gone *and* everything
//!   it sent has been drained. A read now returns the empty aggregate.
//!   Like `POLLHUP`, this is reported regardless of the interest asked
//!   for — a peer closing is precisely what makes a blocked descriptor
//!   "become ready".
//! * `epipe` — writes can never succeed again (no reader left on a
//!   pipe, socket torn down or peer-closed). Reported regardless of
//!   interest, like `POLLERR`.
//! * `invalid` — the descriptor is not open in the caller's table
//!   (`POLLNVAL`); one stale entry does not fail the whole scan.
//!
//! [`Kernel::iol_poll`]: crate::Kernel::iol_poll

use crate::fd::Fd;

/// Which direction(s) of readiness a poll entry asks about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Interest {
    /// Wake when a read would make progress.
    Readable,
    /// Wake when a write would make progress.
    Writable,
    /// Wake on either direction.
    Both,
}

impl Interest {
    /// Whether this interest includes reads.
    pub fn wants_read(self) -> bool {
        matches!(self, Interest::Readable | Interest::Both)
    }

    /// Whether this interest includes writes.
    pub fn wants_write(self) -> bool {
        matches!(self, Interest::Writable | Interest::Both)
    }
}

/// One entry in a poll set: a descriptor and the direction(s) the
/// caller wants to be woken for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PollFd {
    /// The descriptor to query.
    pub fd: Fd,
    /// The direction(s) of interest.
    pub interest: Interest,
}

impl PollFd {
    /// A read-interest entry.
    pub fn readable(fd: Fd) -> PollFd {
        PollFd {
            fd,
            interest: Interest::Readable,
        }
    }

    /// A write-interest entry.
    pub fn writable(fd: Fd) -> PollFd {
        PollFd {
            fd,
            interest: Interest::Writable,
        }
    }
}

/// The kernel's answer for one polled descriptor.
///
/// `eof`/`epipe`/`invalid` are reported unconditionally (as `POLLHUP`/
/// `POLLERR`/`POLLNVAL` are); `readable`/`writable` describe the actual
/// state and the caller masks them with its interest.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Readiness {
    /// A read would return data without blocking.
    pub readable: bool,
    /// A write would accept at least one byte without blocking.
    pub writable: bool,
    /// End of stream: the peer is gone and the buffered data is drained
    /// (a read returns empty).
    pub eof: bool,
    /// Writes are permanently refused (`EPIPE` on the next attempt).
    pub epipe: bool,
    /// The descriptor is not open in the caller's table (`POLLNVAL`).
    pub invalid: bool,
}

impl Readiness {
    /// The all-clear answer: nothing to report, keep waiting.
    pub const PENDING: Readiness = Readiness {
        readable: false,
        writable: false,
        eof: false,
        epipe: false,
        invalid: false,
    };

    /// Whether this answer would wake a poller with the given interest:
    /// the asked-for direction is ready, or a condition that is always
    /// reported (`eof`/`epipe`/`invalid`) holds.
    pub fn wakes(&self, interest: Interest) -> bool {
        (interest.wants_read() && self.readable)
            || (interest.wants_write() && self.writable)
            || self.eof
            || self.epipe
            || self.invalid
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interest_directions() {
        assert!(Interest::Readable.wants_read() && !Interest::Readable.wants_write());
        assert!(Interest::Writable.wants_write() && !Interest::Writable.wants_read());
        assert!(Interest::Both.wants_read() && Interest::Both.wants_write());
    }

    #[test]
    fn wake_rules_mask_by_interest_but_not_for_errors() {
        let readable = Readiness {
            readable: true,
            ..Readiness::PENDING
        };
        assert!(readable.wakes(Interest::Readable));
        assert!(!readable.wakes(Interest::Writable));
        let hup = Readiness {
            eof: true,
            ..Readiness::PENDING
        };
        // A peer closing wakes even a write-interest poller (POLLHUP).
        assert!(hup.wakes(Interest::Writable));
        let dead = Readiness {
            epipe: true,
            ..Readiness::PENDING
        };
        assert!(dead.wakes(Interest::Readable));
        assert!(!Readiness::PENDING.wakes(Interest::Both));
    }

    #[test]
    fn constructors() {
        let p = PollFd::readable(Fd(3));
        assert_eq!(p.interest, Interest::Readable);
        assert_eq!(PollFd::writable(Fd(4)).interest, Interest::Writable);
        assert_eq!(p.fd, Fd(3));
    }
}

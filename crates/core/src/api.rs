//! The IO-Lite API exactly as Figure 2 and §3.4 present it — on file
//! descriptors, as the paper demands: `IOL_read` and `IOL_write` "can
//! act on any UNIX file descriptor, including those associated with
//! network sockets, disk files, pipes, and special devices."
//!
//! The paper's API surface, mapped to this implementation:
//!
//! | paper (Fig. 2 / §3.4) | here |
//! |---|---|
//! | `IOL_Agg` | [`IolAgg`] (= [`iolite_buf::Aggregate`]) |
//! | `IOL_read(fd, size)` | [`iol_read`]`(kernel, pid, fd, size)` → [`IoResult<IolAgg>`] |
//! | `IOL_write(fd, agg)` | [`iol_write`]`(kernel, pid, fd, agg)` → [`IoResult<u64>`] |
//! | `IOL_read` w/ allocation pool | [`iol_read_pool`] (ACL-checked, pool-attributed) |
//! | create/delete allocation pools | [`iol_create_pool`] |
//! | aggregate create/dup/concat/trunc | methods on [`IolAgg`] |
//! | `mmap` | [`iol_mmap`] |
//! | "all other file-descriptor-related UNIX system calls" | [`Kernel::open`], [`Kernel::lseek`] ([`crate::Whence`]), [`Kernel::dup_fd`]/[`Kernel::dup2_fd`], [`Kernel::close_fd`], `pipe(2)` via [`Kernel::pipe_fds`]/[`Kernel::pipe_between`], sockets via [`Kernel::socket_create`] |
//!
//! The descriptor is the *only* application-level capability: whether
//! it names a cached disk file, a pipe end, a TCP socket, or the stdio
//! triple installed at [`Kernel::spawn`], the same two calls move data
//! — and every call returns [`IoResult`], so misuse (`NotOpen`,
//! `BadFdKind`, ACL denial, EOF vs `WouldBlock`, short writes) is a
//! value, not a panic.
//!
//! Semantics carried over verbatim:
//!
//! * "The new `IOL_read` operation returns a buffer aggregate containing
//!   at most the amount of data specified as an argument. Unlike the
//!   POSIX read, `IOL_read` may always return less data than requested."
//! * "The `IOL_write` operation replaces the data in an external data
//!   object with the contents of the buffer aggregate."
//! * "The data returned by an `IOL_read` are effectively a 'snapshot' of
//!   the data contained in the object associated with the file
//!   descriptor" — atomic with respect to concurrent `IOL_write`s.
//!
//! These are thin wrappers over [`Kernel`] methods; applications that
//! prefer Rust-idiomatic naming call the kernel directly.

use iolite_buf::{Acl, BufferPool};
use iolite_vm::MmapView;

use crate::error::{IoResult, IolError};
use crate::fd::Fd;
use crate::kernel::Kernel;
use crate::process::Pid;

pub use iolite_buf::Aggregate as IolAgg;

/// `IOL_read`: returns a snapshot aggregate of at most `size` bytes
/// from the object behind `fd` — a file (at the shared seek offset), a
/// pipe read end, or a socket's inbound stream.
///
/// Short reads are part of the contract; callers loop. The returned
/// aggregate shares physical buffers with the file cache (§3.1) and
/// remains valid — with its snapshotted contents — across any later
/// writes or evictions (§3.5).
///
/// # Errors
///
/// See [`Kernel::iol_read_fd`].
pub fn iol_read(kernel: &mut Kernel, pid: Pid, fd: Fd, size: u64) -> IoResult<IolAgg> {
    kernel.iol_read_fd(pid, fd, size)
}

/// `IOL_read` with an explicit allocation pool (§3.4: "a version of
/// IOL_read allows applications to specify an allocation pool").
///
/// In this implementation the pool choice matters for *incoming* data
/// placement (the receive path); cached file data already lives in
/// IO-Lite buffers, so this variant performs the read, enforces that
/// the caller may access data through `pool`'s ACL, and attributes the
/// read's placement to the pool's counters
/// ([`iolite_buf::PoolStats::reads_attributed`]).
///
/// # Errors
///
/// [`IolError::PermissionDenied`] when `pid`'s domain is not on
/// `pool`'s ACL — in release builds too, not as a debug assertion —
/// plus everything [`Kernel::iol_read_fd`] can return.
pub fn iol_read_pool(
    kernel: &mut Kernel,
    pid: Pid,
    pool: &BufferPool,
    fd: Fd,
    size: u64,
) -> IoResult<IolAgg> {
    if !pool.acl().allows(pid.domain()) {
        return Err(IolError::PermissionDenied {
            domain: pid.domain(),
        });
    }
    let (agg, out) = kernel.iol_read_fd(pid, fd, size)?;
    pool.attribute_read(agg.len());
    Ok((agg, out))
}

/// `IOL_write`: replaces the extent of the object behind `fd` with the
/// contents of `agg` (§3.5 snapshot-preserving replacement for files;
/// enqueue-by-reference for pipes; the zero-copy send path for
/// sockets). Returns the bytes accepted.
///
/// # Errors
///
/// See [`Kernel::iol_write_fd`]; partial pipe writes surface as
/// [`IolError::ShortIo`] carrying the progress made.
pub fn iol_write(kernel: &mut Kernel, pid: Pid, fd: Fd, agg: &IolAgg) -> IoResult<u64> {
    kernel.iol_write_fd(pid, fd, agg)
}

/// Creates an IO-Lite allocation pool with the given ACL
/// (`IOL_create_pool`). Dropping the returned handle deletes the pool
/// once its buffers drain.
pub fn iol_create_pool(kernel: &mut Kernel, acl: Acl) -> BufferPool {
    kernel.create_pool(acl)
}

/// The retained `mmap` interface (§3.8) for applications that need
/// contiguous, in-place-modifiable views.
///
/// # Errors
///
/// See [`Kernel::mmap_fd`].
pub fn iol_mmap(kernel: &mut Kernel, pid: Pid, fd: Fd) -> IoResult<MmapView> {
    kernel.mmap_fd(pid, fd)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;
    use crate::fd::Whence;

    #[test]
    fn reads_may_be_short_and_writes_replace() {
        let mut k = Kernel::new(CostModel::pentium_ii_333());
        let pid = k.spawn("app");
        k.create_file("/f", b"0123456789");
        let (fd, _) = k.open(pid, "/f").unwrap();
        // Short read at EOF.
        k.lseek(pid, fd, 8, Whence::Set).unwrap();
        let (agg, _) = iol_read(&mut k, pid, fd, 100).unwrap();
        assert_eq!(agg.to_vec(), b"89");
        // Write replaces; snapshot persists.
        k.lseek(pid, fd, 0, Whence::Set).unwrap();
        let (snap, _) = iol_read(&mut k, pid, fd, 100).unwrap();
        let patch = IolAgg::from_bytes(k.process(pid).pool(), b"ABC");
        k.lseek(pid, fd, 0, Whence::Set).unwrap();
        iol_write(&mut k, pid, fd, &patch).unwrap();
        assert_eq!(snap.to_vec(), b"0123456789");
        k.lseek(pid, fd, 0, Whence::Set).unwrap();
        let (now, _) = iol_read(&mut k, pid, fd, 100).unwrap();
        assert_eq!(now.to_vec(), b"ABC3456789");
    }

    #[test]
    fn pool_creation_acl_and_attribution() {
        let mut k = Kernel::new(CostModel::pentium_ii_333());
        let a = k.spawn("a");
        let b = k.spawn("b");
        let pool = iol_create_pool(&mut k, Acl::with_domains(&[a.domain(), b.domain()]));
        assert!(pool.acl().allows(a.domain()));
        assert!(pool.acl().allows(b.domain()));
        k.create_file("/x", b"hi");
        let (fd, _) = k.open(a, "/x").unwrap();
        let (agg, _) = iol_read_pool(&mut k, a, &pool, fd, 10).unwrap();
        assert_eq!(agg.to_vec(), b"hi");
        // The placement was billed to the pool.
        assert_eq!(pool.stats().reads_attributed, 1);
        assert_eq!(pool.stats().bytes_attributed, 2);
    }

    /// Regression: the ACL check used to be a `debug_assert!`, so
    /// release builds silently ignored pool ACLs. It is now a real
    /// error in every build profile.
    #[test]
    fn pool_acl_denial_is_an_error_not_a_debug_assert() {
        let mut k = Kernel::new(CostModel::pentium_ii_333());
        let owner = k.spawn("owner");
        let stranger = k.spawn("stranger");
        let private = iol_create_pool(&mut k, Acl::with_domain(owner.domain()));
        k.create_file("/x", b"data");
        let (fd, _) = k.open(stranger, "/x").unwrap();
        let err = iol_read_pool(&mut k, stranger, &private, fd, 10).unwrap_err();
        assert_eq!(
            err,
            IolError::PermissionDenied {
                domain: stranger.domain()
            }
        );
        // Denied reads attribute nothing.
        assert_eq!(private.stats().reads_attributed, 0);
    }

    #[test]
    fn mmap_veneer_works() {
        let mut k = Kernel::new(CostModel::pentium_ii_333());
        let pid = k.spawn("app");
        let f = k.create_synthetic_file("/f", 5000, 2);
        let fd = k.open_file(pid, f);
        let (mut view, _) = iol_mmap(&mut k, pid, fd).unwrap();
        assert_eq!(view.read_all(), k.store.read(f, 0, 5000).unwrap());
    }
}

//! The IO-Lite API exactly as Figure 2 and §3.4 present it.
//!
//! The paper's API surface, mapped to this implementation:
//!
//! | paper (Fig. 2 / §3.4) | here |
//! |---|---|
//! | `IOL_Agg` | [`IolAgg`] (= [`iolite_buf::Aggregate`]) |
//! | `IOL_read(fd, size)` | [`iol_read`] |
//! | `IOL_write(fd, agg)` | [`iol_write`] |
//! | `IOL_read` w/ allocation pool | [`iol_read_pool`] |
//! | create/delete allocation pools | [`iol_create_pool`] |
//! | aggregate create/dup/concat/trunc | methods on [`IolAgg`] |
//! | `mmap` | [`iol_mmap`] |
//!
//! Semantics carried over verbatim:
//!
//! * "The new `IOL_read` operation returns a buffer aggregate containing
//!   at most the amount of data specified as an argument. Unlike the
//!   POSIX read, `IOL_read` may always return less data than requested."
//! * "The `IOL_write` operation replaces the data in an external data
//!   object with the contents of the buffer aggregate."
//! * "The data returned by an `IOL_read` are effectively a 'snapshot' of
//!   the data contained in the object associated with the file
//!   descriptor" — atomic with respect to concurrent `IOL_write`s.
//!
//! These are thin wrappers over [`Kernel`] methods; applications that
//! prefer Rust-idiomatic naming call the kernel directly.

use iolite_buf::{Acl, Aggregate, BufferPool};
use iolite_fs::FileId;
use iolite_vm::MmapView;

use crate::kernel::{IoOutcome, Kernel};
use crate::process::Pid;

/// The paper's `IOL_Agg` abstract data type.
pub type IolAgg = Aggregate;

/// `IOL_read`: returns a snapshot aggregate of at most `size` bytes
/// from `file` at `offset`.
///
/// Short reads are part of the contract; callers loop. The returned
/// aggregate shares physical buffers with the file cache (§3.1) and
/// remains valid — with its snapshotted contents — across any later
/// writes or evictions (§3.5).
pub fn iol_read(
    kernel: &mut Kernel,
    pid: Pid,
    file: FileId,
    offset: u64,
    size: u64,
) -> (IolAgg, IoOutcome) {
    kernel.iol_read(pid, file, offset, size)
}

/// `IOL_read` with an explicit allocation pool (§3.4: "a version of
/// IOL_read allows applications to specify an allocation pool").
///
/// In this implementation the pool choice matters for *incoming* data
/// placement (the receive path); cached file data already lives in
/// IO-Lite buffers, so this variant simply performs the read and then
/// asserts the caller may access the data through `pool`'s ACL.
pub fn iol_read_pool(
    kernel: &mut Kernel,
    pid: Pid,
    pool: &BufferPool,
    file: FileId,
    offset: u64,
    size: u64,
) -> (IolAgg, IoOutcome) {
    debug_assert!(
        pool.acl().allows(pid.domain()),
        "caller must be on its own pool's ACL"
    );
    kernel.iol_read(pid, file, offset, size)
}

/// `IOL_write`: replaces the extent of `file` at `offset` with the
/// contents of `agg` (§3.5 snapshot-preserving replacement).
pub fn iol_write(
    kernel: &mut Kernel,
    pid: Pid,
    file: FileId,
    offset: u64,
    agg: &IolAgg,
) -> IoOutcome {
    kernel.iol_write(pid, file, offset, agg)
}

/// Creates an IO-Lite allocation pool with the given ACL
/// (`IOL_create_pool`). Dropping the returned handle deletes the pool
/// once its buffers drain.
pub fn iol_create_pool(kernel: &mut Kernel, acl: Acl) -> BufferPool {
    kernel.create_pool(acl)
}

/// The retained `mmap` interface (§3.8) for applications that need
/// contiguous, in-place-modifiable views.
pub fn iol_mmap(kernel: &mut Kernel, pid: Pid, file: FileId) -> (MmapView, IoOutcome) {
    kernel.mmap(pid, file)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;

    #[test]
    fn reads_may_be_short_and_writes_replace() {
        let mut k = Kernel::new(CostModel::pentium_ii_333());
        let pid = k.spawn("app");
        let f = k.create_file("/f", b"0123456789");
        // Short read at EOF.
        let (agg, _) = iol_read(&mut k, pid, f, 8, 100);
        assert_eq!(agg.to_vec(), b"89");
        // Write replaces; snapshot persists.
        let (snap, _) = iol_read(&mut k, pid, f, 0, 100);
        let patch = IolAgg::from_bytes(k.process(pid).pool(), b"ABC");
        iol_write(&mut k, pid, f, 0, &patch);
        assert_eq!(snap.to_vec(), b"0123456789");
        let (now, _) = iol_read(&mut k, pid, f, 0, 100);
        assert_eq!(now.to_vec(), b"ABC3456789");
    }

    #[test]
    fn pool_creation_and_acl() {
        let mut k = Kernel::new(CostModel::pentium_ii_333());
        let a = k.spawn("a");
        let b = k.spawn("b");
        let pool = iol_create_pool(&mut k, Acl::with_domains(&[a.domain(), b.domain()]));
        assert!(pool.acl().allows(a.domain()));
        assert!(pool.acl().allows(b.domain()));
        let file = k.create_file("/x", b"hi");
        let (agg, _) = iol_read_pool(&mut k, a, &pool, file, 0, 10);
        assert_eq!(agg.to_vec(), b"hi");
    }

    #[test]
    fn mmap_veneer_works() {
        let mut k = Kernel::new(CostModel::pentium_ii_333());
        let pid = k.spawn("app");
        let f = k.create_synthetic_file("/f", 5000, 2);
        let (mut view, _) = iol_mmap(&mut k, pid, f);
        assert_eq!(view.read_all(), k.store.read(f, 0, 5000).unwrap());
    }
}

//! File descriptors: the §3.4 contract that `IOL_read`/`IOL_write`
//! "can act on any UNIX file descriptor".
//!
//! Descriptors resolve to open-file descriptions with UNIX semantics:
//! `dup`ed descriptors share one file offset (one description, two
//! numbers), independently `open`ed descriptors do not. Files, pipe
//! ends, **and sockets** all sit behind the same table, so one code
//! path serves the paper's "all other file-descriptor-related UNIX
//! system calls remain unchanged".
//!
//! Descriptor numbers follow POSIX: allocation always takes the lowest
//! free number, `dup2`-style [`FdTable::install_at`] targets an exact
//! number, and the conventional stdio triple occupies 0/1/2 (installed
//! by `Kernel::spawn`).

use std::collections::{BTreeMap, HashMap};
// lint:allow(no-lock) — see `OpenFileRef` below for why this Mutex
// does not violate the shared-nothing rule.
use std::sync::{Arc, Mutex};

use iolite_fs::FileId;

use crate::kernel::{ConnId, PipeId};
use crate::process::Pid;

/// A per-process file-descriptor number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Fd(pub u32);

impl Fd {
    /// Standard input (installed at `spawn`).
    pub const STDIN: Fd = Fd(0);
    /// Standard output (installed at `spawn`).
    pub const STDOUT: Fd = Fd(1);
    /// Standard error (installed at `spawn`).
    pub const STDERR: Fd = Fd(2);
}

/// Where an `lseek` offset is measured from (`SEEK_SET`/`SEEK_CUR`/
/// `SEEK_END`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Whence {
    /// From the start of the file.
    Set,
    /// From the current offset.
    Cur,
    /// From end-of-file, resolved against the file's metadata.
    End,
}

/// What an open-file description refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FdObject {
    /// A regular file with a seek position.
    File(FileId),
    /// The read end of a pipe.
    PipeRead(PipeId),
    /// The write end of a pipe.
    PipeWrite(PipeId),
    /// A TCP socket in the kernel's connection registry.
    Socket(ConnId),
}

/// An open-file description (shared by `dup`ed descriptors).
#[derive(Debug)]
pub struct OpenFile {
    /// The underlying object.
    pub object: FdObject,
    /// Current file offset (files only; pipes and sockets ignore it).
    pub pos: u64,
}

/// A shared handle to an open-file description.
///
/// The Mutex exists so `dup`ed descriptors (possibly across simulated
/// processes) share one offset while `Kernel` stays `Send`; every
/// descriptor is only ever touched by its owning shard's thread, so
/// the lock is uncontended by construction — it never crosses shards.
// lint:allow(no-lock) — shard-confined dup sharing (see above); no
// cross-shard state hides behind this lock.
pub type OpenFileRef = Arc<Mutex<OpenFile>>;

/// One process's descriptor table.
#[derive(Debug, Default)]
pub struct FdTable {
    entries: BTreeMap<Fd, OpenFileRef>,
}

impl FdTable {
    /// Creates an empty table. Numbering starts at 0; the kernel claims
    /// 0/1/2 for the stdio triple at `spawn`, so user objects land at 3+.
    pub fn new() -> Self {
        FdTable::default()
    }

    /// The lowest descriptor number not currently in use (POSIX
    /// allocation order).
    fn lowest_free(&self) -> Fd {
        let mut n = 0u32;
        for fd in self.entries.keys() {
            if fd.0 == n {
                n += 1;
            } else {
                break;
            }
        }
        Fd(n)
    }

    /// Installs a new open-file description at the lowest free number,
    /// returning its descriptor. Closed numbers are reused, per POSIX.
    pub fn install(&mut self, object: FdObject) -> Fd {
        let fd = self.lowest_free();
        self.entries
            // lint:allow(no-lock) — constructing an `OpenFileRef`
            // (shard-confined; see the type's docs).
            .insert(fd, Arc::new(Mutex::new(OpenFile { object, pos: 0 })));
        fd
    }

    /// Installs a *new* description for `object` at exactly `at`
    /// (`dup2`-style targeting), silently replacing whatever was there.
    /// Returns the displaced description, if any, so the kernel can run
    /// last-reference close semantics on it.
    pub fn install_at(&mut self, at: Fd, object: FdObject) -> Option<OpenFileRef> {
        self.entries
            // lint:allow(no-lock) — constructing an `OpenFileRef`
            // (shard-confined; see the type's docs).
            .insert(at, Arc::new(Mutex::new(OpenFile { object, pos: 0 })))
    }

    /// Duplicates `fd` onto the lowest free number: the new descriptor
    /// shares the same open-file description (and therefore the same
    /// offset), as POSIX `dup`.
    pub fn dup(&mut self, fd: Fd) -> Option<Fd> {
        let desc = self.entries.get(&fd)?.clone();
        let new = self.lowest_free();
        self.entries.insert(new, desc);
        Some(new)
    }

    /// Duplicates `src` onto exactly `dst` (POSIX `dup2`): the two
    /// numbers share one description afterwards. Returns the displaced
    /// description previously at `dst`, if any (`None` also when
    /// `src == dst`, which is a no-op per POSIX).
    pub fn dup2(&mut self, src: Fd, dst: Fd) -> Option<Option<OpenFileRef>> {
        let desc = self.entries.get(&src)?.clone();
        if src == dst {
            return Some(None);
        }
        Some(self.entries.insert(dst, desc))
    }

    /// Resolves a descriptor.
    pub fn get(&self, fd: Fd) -> Option<OpenFileRef> {
        self.entries.get(&fd).cloned()
    }

    /// Closes a descriptor; the description dies with its last number.
    /// Returns the removed description so the kernel can apply
    /// last-reference semantics (pipe EOF, socket teardown).
    pub fn close(&mut self, fd: Fd) -> Option<OpenFileRef> {
        self.entries.remove(&fd)
    }

    /// Open descriptors.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates the open descriptors and their objects.
    pub fn iter(&self) -> impl Iterator<Item = (Fd, FdObject)> + '_ {
        self.entries.iter().map(|(fd, of)| (*fd, of.lock().unwrap().object))
    }

    /// Deep-forks the table for a kernel-state snapshot. `shared` maps
    /// original description identity → forked twin across the *whole*
    /// registry, so `dup`ed descriptors (possibly in different
    /// processes) keep sharing one offset after the fork.
    fn fork(&self, shared: &mut HashMap<usize, OpenFileRef>) -> FdTable {
        let entries = self
            .entries
            .iter()
            .map(|(fd, desc)| {
                let key = Arc::as_ptr(desc) as usize;
                let twin = shared
                    .entry(key)
                    .or_insert_with(|| {
                        let of = desc.lock().unwrap();
                        // lint:allow(no-lock) — constructing an
                        // `OpenFileRef` (shard-confined; type docs).
                        Arc::new(Mutex::new(OpenFile {
                            object: of.object,
                            pos: of.pos,
                        }))
                    })
                    .clone();
                (*fd, twin)
            })
            .collect();
        FdTable { entries }
    }
}

/// Kernel-wide registry of per-process tables.
#[derive(Debug, Default)]
pub struct FdRegistry {
    tables: BTreeMap<Pid, FdTable>,
}

impl FdRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        FdRegistry::default()
    }

    /// The table for `pid`, created on first use.
    pub fn table(&mut self, pid: Pid) -> &mut FdTable {
        self.tables.entry(pid).or_default()
    }

    /// Read-only access to `pid`'s table, if it exists.
    pub fn get_table(&self, pid: Pid) -> Option<&FdTable> {
        self.tables.get(&pid)
    }

    /// Whether any descriptor in any process still refers to `object`
    /// (drives last-close semantics: a pipe's write end closes for real
    /// only when its last descriptor is gone).
    pub fn object_referenced(&self, object: FdObject) -> bool {
        self.tables
            .values()
            .any(|t| t.iter().any(|(_, obj)| obj == object))
    }

    /// Deep-forks the registry, preserving description sharing (one
    /// shared identity map spans every process's table).
    pub fn fork(&self) -> FdRegistry {
        let mut shared = HashMap::new();
        FdRegistry {
            tables: self
                .tables
                .iter()
                .map(|(pid, t)| (*pid, t.fork(&mut shared)))
                .collect(),
        }
    }

    /// Folds the registry into a stable digest. Shared descriptions are
    /// identified by an alias index assigned in first-encounter order
    /// over the (sorted) `(pid, fd)` iteration, so pointer values never
    /// leak into the hash.
    pub fn digest(&self, h: &mut iolite_buf::Fnv64) {
        let mut alias: HashMap<usize, u64> = HashMap::new();
        h.write_usize(self.tables.len());
        for (pid, t) in &self.tables {
            h.write_u32(pid.0);
            h.write_usize(t.entries.len());
            for (fd, desc) in &t.entries {
                h.write_u32(fd.0);
                let key = Arc::as_ptr(desc) as usize;
                let next = alias.len() as u64;
                h.write_u64(*alias.entry(key).or_insert(next));
                let of = desc.lock().unwrap();
                let (tag, id) = match of.object {
                    FdObject::File(f) => (0u64, f.0),
                    FdObject::PipeRead(p) => (1, p.0 as u64),
                    FdObject::PipeWrite(p) => (2, p.0 as u64),
                    FdObject::Socket(c) => (3, c.0),
                };
                h.write_u64(tag);
                h.write_u64(id);
                h.write_u64(of.pos);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn descriptors_allocate_lowest_free_per_process() {
        let mut reg = FdRegistry::new();
        let a = reg.table(Pid(1)).install(FdObject::File(FileId(1)));
        let b = reg.table(Pid(1)).install(FdObject::File(FileId(2)));
        let c = reg.table(Pid(2)).install(FdObject::File(FileId(3)));
        assert_eq!(a, Fd(0));
        assert_eq!(b, Fd(1));
        assert_eq!(c, Fd(0), "tables are independent per process");
    }

    #[test]
    fn closed_numbers_are_reused_lowest_first() {
        let mut t = FdTable::new();
        let a = t.install(FdObject::File(FileId(1)));
        let b = t.install(FdObject::File(FileId(2)));
        let c = t.install(FdObject::File(FileId(3)));
        assert_eq!((a, b, c), (Fd(0), Fd(1), Fd(2)));
        t.close(b);
        // POSIX: the lowest free number, not a forever-incrementing one.
        assert_eq!(t.install(FdObject::File(FileId(4))), Fd(1));
        t.close(a);
        t.close(c);
        assert_eq!(t.install(FdObject::File(FileId(5))), Fd(0));
        assert_eq!(t.install(FdObject::File(FileId(6))), Fd(2));
    }

    #[test]
    fn dup_shares_the_offset() {
        let mut t = FdTable::new();
        let fd = t.install(FdObject::File(FileId(1)));
        let dup = t.dup(fd).unwrap();
        t.get(fd).unwrap().lock().unwrap().pos = 42;
        assert_eq!(t.get(dup).unwrap().lock().unwrap().pos, 42);
        // Closing one number keeps the description alive for the other.
        assert!(t.close(fd).is_some());
        assert_eq!(t.get(dup).unwrap().lock().unwrap().pos, 42);
        assert!(t.get(fd).is_none());
    }

    #[test]
    fn dup2_targets_an_exact_number_and_shares_state() {
        let mut t = FdTable::new();
        let src = t.install(FdObject::File(FileId(7)));
        let displaced = t.install(FdObject::File(FileId(8)));
        // dup2 onto an occupied number displaces it.
        let old = t.dup2(src, displaced).unwrap();
        assert!(old.is_some(), "previous description is handed back");
        t.get(src).unwrap().lock().unwrap().pos = 9;
        assert_eq!(t.get(displaced).unwrap().lock().unwrap().pos, 9);
        // dup2 onto itself is a no-op.
        assert!(t.dup2(src, src).unwrap().is_none());
        // dup2 from a closed source fails.
        assert!(t.dup2(Fd(99), Fd(5)).is_none());
    }

    #[test]
    fn independent_opens_do_not_share() {
        let mut t = FdTable::new();
        let a = t.install(FdObject::File(FileId(1)));
        let b = t.install(FdObject::File(FileId(1)));
        t.get(a).unwrap().lock().unwrap().pos = 10;
        assert_eq!(t.get(b).unwrap().lock().unwrap().pos, 0);
    }

    #[test]
    fn close_is_idempotent_and_precise() {
        let mut t = FdTable::new();
        let fd = t.install(FdObject::PipeRead(PipeId(1)));
        assert!(t.close(fd).is_some());
        assert!(t.close(fd).is_none());
        assert!(t.dup(fd).is_none());
        assert!(t.is_empty());
    }

    #[test]
    fn registry_tracks_object_references() {
        let mut reg = FdRegistry::new();
        let obj = FdObject::PipeWrite(PipeId(3));
        assert!(!reg.object_referenced(obj));
        let fd = reg.table(Pid(1)).install(obj);
        let dup = reg.table(Pid(1)).dup(fd).unwrap();
        let other = reg.table(Pid(2)).install(obj);
        reg.table(Pid(1)).close(fd);
        assert!(reg.object_referenced(obj), "dup + other process remain");
        reg.table(Pid(1)).close(dup);
        assert!(reg.object_referenced(obj), "other process remains");
        reg.table(Pid(2)).close(other);
        assert!(!reg.object_referenced(obj));
    }
}

//! File descriptors: the §3.4 contract that `IOL_read`/`IOL_write`
//! "can act on any UNIX file descriptor".
//!
//! Descriptors resolve to open-file descriptions with UNIX semantics:
//! `dup`ed descriptors share one file offset (one description, two
//! numbers), independently `open`ed descriptors do not. Files, pipe
//! ends, and (by extension) sockets all sit behind the same table, so
//! one code path serves the paper's "all other file-descriptor-related
//! UNIX system calls remain unchanged".

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use iolite_fs::FileId;

use crate::kernel::PipeId;
use crate::process::Pid;

/// A per-process file-descriptor number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Fd(pub u32);

/// What an open-file description refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FdObject {
    /// A regular file with a seek position.
    File(FileId),
    /// The read end of a pipe.
    PipeRead(PipeId),
    /// The write end of a pipe.
    PipeWrite(PipeId),
}

/// An open-file description (shared by `dup`ed descriptors).
#[derive(Debug)]
pub struct OpenFile {
    /// The underlying object.
    pub object: FdObject,
    /// Current file offset (files only; pipes ignore it).
    pub pos: u64,
}

/// A shared handle to an open-file description.
pub type OpenFileRef = Rc<RefCell<OpenFile>>;

/// One process's descriptor table.
#[derive(Debug)]
pub struct FdTable {
    entries: BTreeMap<Fd, OpenFileRef>,
    next: u32,
}

impl Default for FdTable {
    fn default() -> Self {
        FdTable::new()
    }
}

impl FdTable {
    /// Creates an empty table (fd numbering starts at 3, leaving the
    /// conventional stdio triple free).
    pub fn new() -> Self {
        FdTable {
            entries: BTreeMap::new(),
            next: 3,
        }
    }

    /// Installs a new open-file description, returning its descriptor.
    pub fn install(&mut self, object: FdObject) -> Fd {
        let fd = Fd(self.next);
        self.next += 1;
        self.entries
            .insert(fd, Rc::new(RefCell::new(OpenFile { object, pos: 0 })));
        fd
    }

    /// Duplicates `fd`: the new descriptor shares the same open-file
    /// description (and therefore the same offset), as POSIX `dup`.
    pub fn dup(&mut self, fd: Fd) -> Option<Fd> {
        let desc = self.entries.get(&fd)?.clone();
        let new = Fd(self.next);
        self.next += 1;
        self.entries.insert(new, desc);
        Some(new)
    }

    /// Resolves a descriptor.
    pub fn get(&self, fd: Fd) -> Option<OpenFileRef> {
        self.entries.get(&fd).cloned()
    }

    /// Closes a descriptor; the description dies with its last number.
    pub fn close(&mut self, fd: Fd) -> bool {
        self.entries.remove(&fd).is_some()
    }

    /// Open descriptors.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Kernel-wide registry of per-process tables.
#[derive(Debug, Default)]
pub struct FdRegistry {
    tables: BTreeMap<Pid, FdTable>,
}

impl FdRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        FdRegistry::default()
    }

    /// The table for `pid`, created on first use.
    pub fn table(&mut self, pid: Pid) -> &mut FdTable {
        self.tables.entry(pid).or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn descriptors_are_per_process_and_sequential() {
        let mut reg = FdRegistry::new();
        let a = reg.table(Pid(1)).install(FdObject::File(FileId(1)));
        let b = reg.table(Pid(1)).install(FdObject::File(FileId(2)));
        let c = reg.table(Pid(2)).install(FdObject::File(FileId(3)));
        assert_eq!(a, Fd(3));
        assert_eq!(b, Fd(4));
        assert_eq!(c, Fd(3), "tables are independent per process");
    }

    #[test]
    fn dup_shares_the_offset() {
        let mut t = FdTable::new();
        let fd = t.install(FdObject::File(FileId(1)));
        let dup = t.dup(fd).unwrap();
        t.get(fd).unwrap().borrow_mut().pos = 42;
        assert_eq!(t.get(dup).unwrap().borrow().pos, 42);
        // Closing one number keeps the description alive for the other.
        assert!(t.close(fd));
        assert_eq!(t.get(dup).unwrap().borrow().pos, 42);
        assert!(t.get(fd).is_none());
    }

    #[test]
    fn independent_opens_do_not_share() {
        let mut t = FdTable::new();
        let a = t.install(FdObject::File(FileId(1)));
        let b = t.install(FdObject::File(FileId(1)));
        t.get(a).unwrap().borrow_mut().pos = 10;
        assert_eq!(t.get(b).unwrap().borrow().pos, 0);
    }

    #[test]
    fn close_is_idempotent_and_precise() {
        let mut t = FdTable::new();
        let fd = t.install(FdObject::PipeRead(PipeId(1)));
        assert!(t.close(fd));
        assert!(!t.close(fd));
        assert!(t.dup(fd).is_none());
        assert!(t.is_empty());
    }
}

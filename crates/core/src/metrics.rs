//! System-wide instrumentation.
//!
//! Counts the mechanism-level events (copies, checksums, mappings,
//! switches, disk I/O) whose elimination is the paper's whole thesis.
//! EXPERIMENTS.md reports these next to throughput so the *cause* of
//! each speedup is visible, not just the effect.

use std::collections::BTreeMap;
use std::fmt;

use iolite_sim::SimTime;

use crate::cost::CostCategory;

/// Mechanism-level event and time accounting.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Metrics {
    /// Bytes physically copied, by any subsystem.
    pub bytes_copied: u64,
    /// Bytes touched by checksum computation.
    pub bytes_checksummed: u64,
    /// Bytes whose checksum was served from the §3.9 cache.
    pub bytes_checksum_cached: u64,
    /// New page mappings established in the IO-Lite window.
    pub pages_mapped: u64,
    /// System calls executed.
    pub syscalls: u64,
    /// Context switches.
    pub context_switches: u64,
    /// Disk accesses.
    pub disk_ops: u64,
    /// Bytes moved from disk.
    pub disk_bytes: u64,
    /// Bytes installed as dirty cache entries (the PUT ingest path).
    pub bytes_dirty_installed: u64,
    /// Write-back flush batches executed.
    pub writeback_flushes: u64,
    /// Cache entries cleaned by write-back flushes.
    pub writeback_entries: u64,
    /// Bytes persisted by write-back (NVM + disk).
    pub bytes_written_back: u64,
    /// Bytes the NVM staging tier absorbed on the flush path.
    pub nvm_absorbed_bytes: u64,
    /// Bytes demoted from the NVM tier to disk.
    pub nvm_demoted_bytes: u64,
    /// Disk write accesses (write-back overflow + NVM demotions).
    pub disk_write_ops: u64,
    /// Bytes written to disk.
    pub disk_write_bytes: u64,
    /// Simulated CPU time by category.
    pub time_by_category: BTreeMap<CostCategory, SimTime>,
}

impl Metrics {
    /// Creates zeroed metrics.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Adds simulated time under a category.
    pub fn charge(&mut self, cat: CostCategory, t: SimTime) {
        *self.time_by_category.entry(cat).or_insert(SimTime::ZERO) += t;
    }

    /// Total simulated CPU time across categories.
    pub fn total_time(&self) -> SimTime {
        self.time_by_category
            .values()
            .fold(SimTime::ZERO, |acc, &t| acc + t)
    }

    /// Merges another accumulation into this one — per-shard metrics
    /// roll up into a single global view after a sharded run. Every
    /// field is a sum, so merging N shard metrics in any order yields
    /// the same global totals.
    pub fn merge(&mut self, other: &Metrics) {
        self.bytes_copied += other.bytes_copied;
        self.bytes_checksummed += other.bytes_checksummed;
        self.bytes_checksum_cached += other.bytes_checksum_cached;
        self.pages_mapped += other.pages_mapped;
        self.syscalls += other.syscalls;
        self.context_switches += other.context_switches;
        self.disk_ops += other.disk_ops;
        self.disk_bytes += other.disk_bytes;
        self.bytes_dirty_installed += other.bytes_dirty_installed;
        self.writeback_flushes += other.writeback_flushes;
        self.writeback_entries += other.writeback_entries;
        self.bytes_written_back += other.bytes_written_back;
        self.nvm_absorbed_bytes += other.nvm_absorbed_bytes;
        self.nvm_demoted_bytes += other.nvm_demoted_bytes;
        self.disk_write_ops += other.disk_write_ops;
        self.disk_write_bytes += other.disk_write_bytes;
        for (cat, t) in &other.time_by_category {
            self.charge(*cat, *t);
        }
    }

    /// Time recorded under one category.
    pub fn time_in(&self, cat: CostCategory) -> SimTime {
        self.time_by_category
            .get(&cat)
            .copied()
            .unwrap_or(SimTime::ZERO)
    }
}

impl fmt::Display for Metrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "copied={}KB checksummed={}KB (cached {}KB) pages_mapped={} \
             syscalls={} ctx={} disk_ops={} disk={}KB",
            self.bytes_copied >> 10,
            self.bytes_checksummed >> 10,
            self.bytes_checksum_cached >> 10,
            self.pages_mapped,
            self.syscalls,
            self.context_switches,
            self.disk_ops,
            self.disk_bytes >> 10,
        )?;
        if self.bytes_dirty_installed > 0 || self.bytes_written_back > 0 {
            writeln!(
                f,
                "  write path: dirty_installed={}KB flushes={} entries={} \
                 written_back={}KB nvm_absorbed={}KB nvm_demoted={}KB \
                 disk_write_ops={} disk_writes={}KB",
                self.bytes_dirty_installed >> 10,
                self.writeback_flushes,
                self.writeback_entries,
                self.bytes_written_back >> 10,
                self.nvm_absorbed_bytes >> 10,
                self.nvm_demoted_bytes >> 10,
                self.disk_write_ops,
                self.disk_write_bytes >> 10,
            )?;
        }
        for (cat, t) in &self.time_by_category {
            writeln!(f, "  {cat:?}: {t}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_accumulates_by_category() {
        let mut m = Metrics::new();
        m.charge(CostCategory::Copy, SimTime::from_us(10.0));
        m.charge(CostCategory::Copy, SimTime::from_us(5.0));
        m.charge(CostCategory::Checksum, SimTime::from_us(2.0));
        assert_eq!(m.time_in(CostCategory::Copy), SimTime::from_us(15.0));
        assert_eq!(m.total_time(), SimTime::from_us(17.0));
        assert_eq!(m.time_in(CostCategory::Packet), SimTime::ZERO);
    }

    #[test]
    fn display_is_humane() {
        let mut m = Metrics::new();
        m.bytes_copied = 2048;
        m.charge(CostCategory::Syscall, SimTime::from_us(1.0));
        let s = m.to_string();
        assert!(s.contains("copied=2KB"));
        assert!(s.contains("Syscall"));
    }
}

#![warn(missing_docs)]
//! The IO-Lite kernel facade: processes, the IOL API, the POSIX
//! baseline, the cost model, and system-wide metrics (paper §3.4, §4).
//!
//! [`Kernel`] composes every substrate — the buffer system
//! (`iolite-buf`), the VM window and memory accountant (`iolite-vm`),
//! the file system and unified cache (`iolite-fs`), the network
//! subsystem (`iolite-net`), and IPC (`iolite-ipc`) — behind the
//! system-call surface the paper defines. The surface is
//! **descriptor-based**: `IOL_read`/`IOL_write` "can act on any UNIX
//! file descriptor" (§3.4), so regular files, both pipe ends, TCP
//! sockets, and the stdio triple installed at [`Kernel::spawn`] all sit
//! behind one [`Fd`] table, and every operation returns a fallible
//! [`IoResult`]:
//!
//! * [`Kernel::iol_read_fd`] / [`Kernel::iol_write_fd`] — the §3.4 core
//!   API with snapshot semantics, shared `dup` offsets, pipe flow
//!   control, and the zero-copy TCP send path, by descriptor kind.
//! * [`Kernel::iol_pread`] / [`Kernel::iol_pwrite`] — positional file
//!   variants (`pread`/`pwrite`).
//! * [`Kernel::posix_read_fd`] / [`Kernel::posix_write_fd`] — the
//!   backward-compatible copying interface ("a data copy operation is
//!   used to move data between application buffers and IO-Lite
//!   buffers", §4.2).
//! * [`Kernel::mmap_fd`] — the contiguous-mapping escape hatch of §3.8.
//! * [`Kernel::open`], [`Kernel::lseek`] (with [`Whence`]),
//!   [`Kernel::dup_fd`]/[`Kernel::dup2_fd`], [`Kernel::close_fd`] — the
//!   "unchanged" descriptor plumbing, with POSIX lowest-free numbering.
//!
//! Every operation does its real data-plane work *and* returns a
//! [`Charge`] — the simulated CPU time it would have cost on the paper's
//! 333MHz Pentium II testbed, per the calibrated [`CostModel`]. Drivers
//! submit charges to a simulated CPU; sequential programs accumulate
//! them on the kernel clock.

pub mod api;
pub mod cost;
pub mod error;
pub mod fd;
pub mod kernel;
pub mod metrics;
pub mod poll;
pub mod process;
pub mod pure;
pub mod shard;
pub mod stdio;

pub use api::IolAgg;
pub use cost::{Charge, CostCategory, CostModel};
pub use error::{short_ok, IoResult, IolError};
pub use fd::{Fd, FdObject, FdTable, Whence};
pub use kernel::{ConnId, IoOutcome, Kernel, MappedFileCache, PipeEnd, PipeId};
pub use metrics::Metrics;
pub use poll::{Interest, PollFd, Readiness};
pub use process::{Pid, Process};
pub use pure::{apply, replay, step, Command, Effect, IdAlloc, Journal, KernelState, Reply};
pub use shard::{shard_of_conn, ShardFabric, ShardMailbox, ShardMsg};
pub use stdio::{StdioIn, StdioMode, StdioOut};

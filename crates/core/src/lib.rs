#![warn(missing_docs)]
//! The IO-Lite kernel facade: processes, the IOL API, the POSIX
//! baseline, the cost model, and system-wide metrics (paper §3.4, §4).
//!
//! [`Kernel`] composes every substrate — the buffer system
//! (`iolite-buf`), the VM window and memory accountant (`iolite-vm`),
//! the file system and unified cache (`iolite-fs`), the network
//! subsystem (`iolite-net`), and IPC (`iolite-ipc`) — behind the
//! system-call surface the paper defines:
//!
//! * [`Kernel::iol_read`] / [`Kernel::iol_write`] — the §3.4 core API
//!   with snapshot semantics and buffer-aggregate transfer.
//! * [`Kernel::posix_read`] / [`Kernel::posix_write`] — the backward-
//!   compatible copying interface ("a data copy operation is used to
//!   move data between application buffers and IO-Lite buffers", §4.2).
//! * [`Kernel::mmap`] — the contiguous-mapping escape hatch of §3.8.
//! * Pipe calls in both conventional and IO-Lite modes (§4.4).
//!
//! Every operation does its real data-plane work *and* returns a
//! [`Charge`] — the simulated CPU time it would have cost on the paper's
//! 333MHz Pentium II testbed, per the calibrated [`CostModel`]. Drivers
//! submit charges to a simulated CPU; sequential programs accumulate
//! them on the kernel clock.

pub mod api;
pub mod cost;
pub mod fd;
pub mod kernel;
pub mod metrics;
pub mod process;
pub mod stdio;

pub use api::IolAgg;
pub use cost::{Charge, CostCategory, CostModel};
pub use fd::{Fd, FdObject, FdTable};
pub use kernel::{IoOutcome, Kernel, MappedFileCache, PipeEnd, PipeId};
pub use metrics::Metrics;
pub use process::{Pid, Process};
pub use stdio::{StdioIn, StdioMode, StdioOut};

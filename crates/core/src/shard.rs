//! Shard routing and the cross-shard message fabric for
//! thread-per-core serving.
//!
//! The sharded serving layer is shared-nothing: each shard owns its own
//! [`crate::Kernel`] (state, unified cache, fd tables, sockets) on its
//! own thread, and the *only* inter-shard communication is typed
//! messages over the bounded channels built here — never a lock on
//! kernel state. Connections are assigned to shards by
//! [`shard_of_conn`], which mixes the **full 64-bit** connection id
//! through splitmix64 before reducing it: the PR 5 lesson (`id & 0xFF`
//! aliased structured id spaces into 4-tuple collisions) applies
//! verbatim to shard routing, where truncation would reappear as shard
//! skew. A uniformity regression test below locks that in.
//!
//! # Deadlock-freedom of the bounded fabric
//!
//! Channel sends use [`std::sync::mpsc::SyncSender::try_send`] and
//! treat a full inbox as a protocol violation rather than blocking.
//! The capacity contract makes fullness impossible: each in-flight
//! connection has at most one outstanding remote read, so shard `s`
//! can be the target of at most Σ(other shards' in-flight caps) read
//! requests plus its own cap in replies plus one `Shutdown`. Sizing
//! every inbox to the fleet-wide in-flight total plus slack (what
//! [`ShardFabric::new`] callers pass) therefore bounds occupancy below
//! capacity, and no send can ever block or fail.

use std::sync::mpsc::{sync_channel, Receiver, SyncSender};

use iolite_buf::splitmix64;
use iolite_fs::FileId;

use crate::pure::ConnId;

/// The shard a connection is served by: the full 64-bit conn id through
/// a full-avalanche mixer, reduced onto `shards`.
///
/// # Panics
///
/// Panics if `shards` is zero.
pub fn shard_of_conn(conn: ConnId, shards: usize) -> usize {
    assert!(shards > 0, "at least one shard");
    (splitmix64(conn.0) % shards as u64) as usize
}

/// One typed unit of cross-shard work.
#[derive(Debug, Clone)]
pub enum ShardMsg {
    /// Shard `from` asks the receiving (home) shard for `file`'s whole
    /// contents; `token` correlates the eventual [`ShardMsg::RemoteData`]
    /// reply with the waiting connection.
    RemoteRead {
        /// Requesting shard (where the reply goes).
        from: usize,
        /// Correlation token chosen by the requester.
        token: u64,
        /// The file whose bytes are wanted.
        file: FileId,
    },
    /// The home shard's reply to a [`ShardMsg::RemoteRead`]: a copy of
    /// the file's bytes, with `home_hit` reporting whether the home
    /// shard's unified cache satisfied the read.
    RemoteData {
        /// The requester's correlation token, echoed back.
        token: u64,
        /// The file the bytes belong to.
        file: FileId,
        /// The file's whole contents (copied across the shard boundary).
        bytes: Vec<u8>,
        /// Whether the home shard served this from its cache.
        home_hit: bool,
    },
    /// Shard `from` routes a PUT body to the receiving (home) shard:
    /// only the home shard ever writes a file, so writes serialize
    /// there without any cross-shard lock.
    RemoteWrite {
        /// Writing shard (where the ack goes).
        from: usize,
        /// Correlation token chosen by the requester.
        token: u64,
        /// The file being replaced.
        file: FileId,
        /// The new contents (copied across the shard boundary).
        bytes: Vec<u8>,
    },
    /// The home shard's acknowledgement of a [`ShardMsg::RemoteWrite`]:
    /// the dirty install completed; the writer may answer its client.
    RemoteWriteAck {
        /// The requester's correlation token, echoed back.
        token: u64,
        /// The file that was written.
        file: FileId,
    },
    /// Home-shard broadcast after a write commits: every replica of the
    /// file cached under `Replicate` ownership is now stale and must be
    /// dropped. Per-pair channels are FIFO, so a replica installed from
    /// an earlier `RemoteData` is always invalidated by the broadcast
    /// that follows the write — no shard can serve replaced bytes once
    /// the fabric drains.
    Invalidate {
        /// The file whose replicas are stale.
        file: FileId,
    },
    /// Coordinator order to leave the service loop. Sent only after
    /// every shard has reported its own connections done, so no
    /// `RemoteRead` can arrive after `Shutdown`.
    Shutdown,
}

/// One shard's endpoint of the fabric: its own inbox plus senders to
/// every shard (self included, which keeps indexing uniform).
pub struct ShardMailbox {
    /// This shard's index.
    pub id: usize,
    /// Inbound cross-shard messages.
    pub inbox: Receiver<ShardMsg>,
    peers: Vec<SyncSender<ShardMsg>>,
}

impl ShardMailbox {
    /// Sends `msg` to shard `to`.
    ///
    /// # Panics
    ///
    /// Panics if the target inbox is full or disconnected — both are
    /// protocol violations under the capacity contract (see module
    /// docs), and failing loudly beats deadlocking a bounded fleet.
    pub fn send(&self, to: usize, msg: ShardMsg) {
        self.peers[to]
            .try_send(msg)
            .expect("cross-shard inbox full or gone: capacity contract violated");
    }

    /// Number of shards in the fabric.
    pub fn shards(&self) -> usize {
        self.peers.len()
    }
}

/// The whole fabric: per-shard mailboxes plus a coordinator's set of
/// senders (used for `Shutdown` broadcast after all shards report
/// their own work done).
pub struct ShardFabric {
    /// One mailbox per shard, to be moved onto the shard threads.
    pub mailboxes: Vec<ShardMailbox>,
    /// Coordinator copies of every shard's sender.
    pub senders: Vec<SyncSender<ShardMsg>>,
}

impl ShardFabric {
    /// Builds a fabric of `shards` bounded inboxes, each with room for
    /// `capacity` messages. Callers size `capacity` to the fleet-wide
    /// in-flight connection total plus slack (see module docs).
    pub fn new(shards: usize, capacity: usize) -> ShardFabric {
        let (senders, receivers): (Vec<_>, Vec<_>) =
            (0..shards).map(|_| sync_channel(capacity)).unzip();
        let mailboxes = receivers
            .into_iter()
            .enumerate()
            .map(|(id, inbox)| ShardMailbox {
                id,
                inbox,
                // lint:allow(hot-path-alloc) — fabric construction,
                // once per run: cloning sender handles, not buffers.
                peers: senders.clone(),
            })
            .collect();
        ShardFabric { mailboxes, senders }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The PR 5 regression, restated for routing: ids that collide in
    /// their low bits (stride 256, so `id & 0xFF` is constant) must
    /// still spread uniformly, as must plain sequential ids.
    #[test]
    fn structured_conn_ids_spread_uniformly_across_shards() {
        for shards in [2usize, 4, 8] {
            for stride in [1u64, 256, 4096] {
                let n = 1usize << 14;
                let mut counts = vec![0usize; shards];
                for k in 0..n {
                    let conn = ConnId(k as u64 * stride);
                    counts[shard_of_conn(conn, shards)] += 1;
                }
                let mean = (n / shards) as f64;
                for (s, &c) in counts.iter().enumerate() {
                    let dev = (c as f64 - mean).abs() / mean;
                    assert!(
                        dev < 0.10,
                        "shard {s} holds {c} of {n} conns (stride {stride}, \
                         {shards} shards): {:.1}% off uniform",
                        dev * 100.0
                    );
                }
            }
        }
    }

    #[test]
    fn routing_is_deterministic_and_total() {
        for shards in 1..=9 {
            for id in [0u64, 1, u64::MAX, 0xdead_beef] {
                let s = shard_of_conn(ConnId(id), shards);
                assert!(s < shards);
                assert_eq!(s, shard_of_conn(ConnId(id), shards));
            }
        }
    }

    #[test]
    fn fabric_routes_and_replies() {
        let fabric = ShardFabric::new(2, 16);
        let mut boxes = fabric.mailboxes;
        let b1 = boxes.pop().unwrap();
        let b0 = boxes.pop().unwrap();
        b0.send(
            1,
            ShardMsg::RemoteRead {
                from: 0,
                token: 7,
                file: FileId(42),
            },
        );
        match b1.inbox.try_recv().unwrap() {
            ShardMsg::RemoteRead { from, token, file } => {
                assert_eq!((from, token, file), (0, 7, FileId(42)));
                b1.send(
                    from,
                    ShardMsg::RemoteData {
                        token,
                        file,
                        bytes: vec![1, 2, 3],
                        home_hit: true,
                    },
                );
            }
            other => panic!("unexpected {other:?}"),
        }
        match b0.inbox.try_recv().unwrap() {
            ShardMsg::RemoteData { token, bytes, .. } => {
                assert_eq!(token, 7);
                assert_eq!(bytes, vec![1, 2, 3]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "capacity contract violated")]
    fn overfilling_a_bounded_inbox_fails_loudly() {
        let fabric = ShardFabric::new(1, 1);
        let mb = &fabric.mailboxes[0];
        mb.send(0, ShardMsg::Shutdown);
        mb.send(0, ShardMsg::Shutdown);
    }
}

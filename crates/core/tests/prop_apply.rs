//! Determinism property for the functional core: applying an arbitrary
//! command sequence twice from the same starting state produces
//! byte-identical successor states (by [`KernelState::state_hash`]) and
//! identical effect streams.
//!
//! The commands deliberately include rejected ones (bad descriptors,
//! reads past EOF, writes to closed pipes): [`iolite_core::step`] must
//! be deterministic on the error paths too, because the journal records
//! attempts and replay re-steps them.

use iolite_core::{step, Command, CostCategory, CostModel, Effect, Fd, Kernel, KernelState, Pid};
use iolite_fs::{CacheKey, FileId};
use iolite_ipc::PipeMode;
use iolite_net::BufferMode;
use iolite_sim::SimTime;
use iolite_vm::MemAccount;
use proptest::prelude::*;

/// A generator-friendly command description: small indices instead of
/// real ids, lowered onto the fixture state by [`lower`].
#[derive(Debug, Clone)]
enum Op {
    Charge(u16),
    Advance(u16),
    ContextSwitch(u8),
    CreateFile(u8, u16),
    Lookup(u8),
    Open(u8),
    OpenMissing(u8),
    CloseFd(u8),
    DupFd(u8),
    Lseek(u8, i16),
    IolRead(u8, u16),
    IolWrite(u8, u16),
    PosixRead(u8, u16),
    PosixWrite(u8, u16),
    Pread(u8, u16, u16),
    PipeFds(bool),
    SocketCreate,
    SocketDrain(u8, u16),
    CachePin(u8),
    CacheUnpin(u8),
    MappedFileTouch(u8),
    MemReserve(u16),
    MemRelease(u16),
    VmPressure(u8),
    RebalanceCache,
    SetChecksumCache(bool),
    FeedStdin(u8),
    ReadStdout(u16),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        any::<u16>().prop_map(Op::Charge),
        any::<u16>().prop_map(Op::Advance),
        any::<u8>().prop_map(Op::ContextSwitch),
        (any::<u8>(), any::<u16>()).prop_map(|(n, len)| Op::CreateFile(n, len)),
        any::<u8>().prop_map(Op::Lookup),
        any::<u8>().prop_map(Op::Open),
        any::<u8>().prop_map(Op::OpenMissing),
        any::<u8>().prop_map(Op::CloseFd),
        any::<u8>().prop_map(Op::DupFd),
        (any::<u8>(), any::<i16>()).prop_map(|(fd, off)| Op::Lseek(fd, off)),
        (any::<u8>(), any::<u16>()).prop_map(|(fd, len)| Op::IolRead(fd, len)),
        (any::<u8>(), any::<u16>()).prop_map(|(fd, len)| Op::IolWrite(fd, len)),
        (any::<u8>(), any::<u16>()).prop_map(|(fd, len)| Op::PosixRead(fd, len)),
        (any::<u8>(), any::<u16>()).prop_map(|(fd, len)| Op::PosixWrite(fd, len)),
        (any::<u8>(), any::<u16>(), any::<u16>()).prop_map(|(fd, o, l)| Op::Pread(fd, o, l)),
        any::<bool>().prop_map(Op::PipeFds),
        Just(Op::SocketCreate),
        (any::<u8>(), any::<u16>()).prop_map(|(fd, max)| Op::SocketDrain(fd, max)),
        any::<u8>().prop_map(Op::CachePin),
        any::<u8>().prop_map(Op::CacheUnpin),
        any::<u8>().prop_map(Op::MappedFileTouch),
        any::<u16>().prop_map(Op::MemReserve),
        any::<u16>().prop_map(Op::MemRelease),
        any::<u8>().prop_map(Op::VmPressure),
        Just(Op::RebalanceCache),
        any::<bool>().prop_map(Op::SetChecksumCache),
        any::<u8>().prop_map(Op::FeedStdin),
        any::<u16>().prop_map(Op::ReadStdout),
    ]
}

/// The fixture every sequence starts from: one process with a few
/// files open, a pipe pair, and a socket — enough live descriptors
/// that generated small fd numbers usually hit *something*.
fn fixture() -> (KernelState, Pid) {
    let mut k = Kernel::new(CostModel::pentium_ii_333());
    let pid = k.spawn("prop");
    for i in 0..4u64 {
        let f = k.create_synthetic_file(&format!("/seed{i}"), 1000 + i * 700, i);
        k.open_file(pid, f);
    }
    k.pipe_fds(pid, PipeMode::ZeroCopy);
    k.socket_create(pid, BufferMode::ZeroCopy, 1460, 64 * 1024);
    (k.snapshot(), pid)
}

/// Lowers an [`Op`] to a real [`Command`] against the fixture. Payload
/// aggregates are built once, outside both folds, so each fold sees
/// literally the same `Command` values — exactly what the journal
/// replays.
fn lower(state: &KernelState, pid: Pid, op: &Op) -> Command {
    let fd = |n: u8| Fd(u32::from(n % 12));
    let file = |n: u8| FileId(u64::from(n % 6));
    match op {
        Op::Charge(us) => Command::Charge {
            category: CostCategory::Syscall,
            charge: iolite_core::Charge::us(f64::from(*us) / 16.0),
        },
        Op::Advance(us) => Command::Advance {
            t: SimTime::from_us(f64::from(*us) / 16.0),
        },
        Op::ContextSwitch(n) => Command::ContextSwitch { n: u64::from(*n) },
        Op::CreateFile(n, len) => Command::CreateSyntheticFile {
            name: format!("/gen{}", n % 8),
            len: u64::from(*len),
            seed: u64::from(*n),
        },
        Op::Lookup(n) => Command::Lookup {
            name: format!("/seed{}", n % 5),
        },
        Op::Open(n) => Command::Open {
            pid,
            path: format!("/seed{}", n % 4),
        },
        Op::OpenMissing(n) => Command::Open {
            pid,
            path: format!("/nope{n}"),
        },
        Op::CloseFd(n) => Command::CloseFd { pid, fd: fd(*n) },
        Op::DupFd(n) => Command::DupFd { pid, fd: fd(*n) },
        Op::Lseek(n, off) => Command::Lseek {
            pid,
            fd: fd(*n),
            offset: i64::from(*off),
            whence: iolite_core::Whence::Set,
        },
        Op::IolRead(n, len) => Command::IolReadFd {
            pid,
            fd: fd(*n),
            len: u64::from(*len),
        },
        Op::IolWrite(n, len) => Command::IolWriteFd {
            pid,
            fd: fd(*n),
            agg: payload(state, pid, *len),
        },
        Op::PosixRead(n, len) => Command::PosixReadFd {
            pid,
            fd: fd(*n),
            len: u64::from(*len),
        },
        Op::PosixWrite(n, len) => Command::PosixWriteFd {
            pid,
            fd: fd(*n),
            data: vec![0xAB; usize::from(*len % 4096)],
        },
        Op::Pread(n, o, l) => Command::IolPread {
            pid,
            fd: fd(*n),
            offset: u64::from(*o),
            len: u64::from(*l),
        },
        Op::PipeFds(zero_copy) => Command::PipeFds {
            pid,
            mode: if *zero_copy {
                PipeMode::ZeroCopy
            } else {
                PipeMode::Copy
            },
        },
        Op::SocketCreate => Command::SocketCreate {
            pid,
            mode: BufferMode::ZeroCopy,
            mss: 1460,
            tss: 64 * 1024,
        },
        Op::SocketDrain(n, max) => Command::SocketDrain {
            pid,
            fd: fd(*n),
            max: u64::from(*max),
        },
        Op::CachePin(n) => Command::CachePin {
            key: CacheKey::whole(file(*n)),
        },
        Op::CacheUnpin(n) => Command::CacheUnpin {
            key: CacheKey::whole(file(*n)),
        },
        Op::MappedFileTouch(n) => Command::MappedFileTouch { file: file(*n) },
        Op::MemReserve(b) => Command::MemReserve {
            account: MemAccount::SocketCopies,
            bytes: u64::from(*b),
        },
        Op::MemRelease(b) => Command::MemRelease {
            account: MemAccount::SocketCopies,
            bytes: u64::from(*b),
        },
        Op::VmPressure(p) => Command::VmPressure {
            other_pages: u64::from(*p),
        },
        Op::RebalanceCache => Command::RebalanceCache,
        Op::SetChecksumCache(on) => Command::SetChecksumCache { enabled: *on },
        Op::FeedStdin(len) => Command::FeedStdin {
            pid,
            data: payload(state, pid, u16::from(*len)),
        },
        Op::ReadStdout(max) => Command::ReadStdout {
            pid,
            max: u64::from(*max),
        },
    }
}

fn payload(state: &KernelState, pid: Pid, len: u16) -> iolite_buf::Aggregate {
    let pool = state.process(pid).pool().clone();
    iolite_buf::Aggregate::from_bytes(&pool, &vec![0xCD; usize::from(len % 4096) + 1])
}

/// One fold of the whole sequence through [`step`], collecting the
/// final digest and the concatenated effect stream (with per-command
/// boundaries, so reordering between commands can't cancel out).
fn run(initial: &KernelState, cmds: &[Command]) -> (u64, Vec<(usize, Effect)>) {
    let mut state = initial.snapshot();
    let mut all = Vec::new();
    let mut fx = Vec::new();
    for (i, cmd) in cmds.iter().enumerate() {
        fx.clear();
        let _ = step(&mut state, cmd, &mut fx);
        all.extend(fx.iter().map(|e| (i, *e)));
    }
    (state.state_hash(), all)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `apply`/`step` is a pure function of (state, command): two folds
    /// of the same sequence from the same state are indistinguishable.
    #[test]
    fn prop_apply_deterministic(ops in proptest::collection::vec(op_strategy(), 1..60)) {
        let (initial, pid) = fixture();
        let cmds: Vec<Command> = ops.iter().map(|op| lower(&initial, pid, op)).collect();
        let (hash_a, fx_a) = run(&initial, &cmds);
        let (hash_b, fx_b) = run(&initial, &cmds);
        prop_assert_eq!(hash_a, hash_b, "state digests diverged");
        prop_assert_eq!(fx_a, fx_b, "effect streams diverged");
        // And the starting state was left untouched by both folds.
        prop_assert_eq!(initial.state_hash(), fixture().0.state_hash());
    }
}

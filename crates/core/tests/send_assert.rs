//! Compile-time `Send` assertions for the sharded serving layer.
//!
//! Thread-per-core sharding moves each shard's `Kernel` onto its own
//! thread, which requires the whole kernel-state object graph —
//! buffer pools, slices, fd tables, caches — to be `Send`. These
//! assertions fail at `cargo test` compile time if anyone reintroduces
//! an `Rc`/`RefCell`/`Cell` anywhere inside that graph, instead of
//! failing later at shard-integration time.

use iolite_core::{Journal, Kernel, KernelState, Metrics};

fn assert_send<T: Send>() {}

#[test]
fn kernel_and_state_are_send() {
    assert_send::<Kernel>();
    assert_send::<KernelState>();
    assert_send::<Metrics>();
    assert_send::<Journal>();
}

#[test]
fn buffer_layer_is_send() {
    assert_send::<iolite_buf::BufferPool>();
    assert_send::<iolite_buf::Slice>();
    assert_send::<iolite_buf::Aggregate>();
    assert_send::<iolite_buf::PoolForker>();
}

//! Workload synthesis from a [`TraceSpec`].

use iolite_sim::{LogNormal, SimRng, Zipf};

use crate::spec::TraceSpec;

/// One file of a synthesized workload. Files are indexed by popularity
/// rank: index 0 is the most requested.
#[derive(Debug, Clone)]
pub struct WorkloadFile {
    /// Server path ("/fNNNNN").
    pub name: String,
    /// Size in bytes.
    pub bytes: u64,
    /// Probability that a request targets this file.
    pub weight: f64,
}

/// A synthesized trace workload: files with sizes and popularity.
#[derive(Debug, Clone)]
pub struct Workload {
    name: String,
    files: Vec<WorkloadFile>,
    popularity: Zipf,
    requests_in_log: u64,
}

impl Workload {
    /// Synthesizes a workload matching `spec` (deterministic in `seed`).
    pub fn synthesize(spec: &TraceSpec, seed: u64) -> Workload {
        let mut rng = SimRng::new(seed ^ 0x10_117E);
        let n = spec.files;
        // --- file sizes: log-normal scaled to the exact total ---
        let mean = spec.mean_file_bytes() as f64;
        let median = mean / (spec.size_sigma * spec.size_sigma / 2.0).exp();
        let dist = LogNormal::new(median.ln(), spec.size_sigma);
        let mut sizes: Vec<u64> = (0..n)
            .map(|_| (dist.sample(&mut rng).max(128.0)) as u64)
            .collect();
        let raw_total: u64 = sizes.iter().sum();
        let scale = spec.total_bytes as f64 / raw_total as f64;
        for s in &mut sizes {
            *s = ((*s as f64 * scale) as u64).max(128);
        }
        sizes.sort_unstable();
        // --- popularity ---
        let popularity = Zipf::new(n, spec.zipf_s);
        // --- size assignment: calibrate anti-correlation so the mean
        // request size hits the published value ---
        let assignment = calibrate_assignment(&sizes, &popularity, spec, &mut rng);
        let files: Vec<WorkloadFile> = assignment
            .iter()
            .enumerate()
            .map(|(rank, &size_idx)| WorkloadFile {
                name: format!("/f{rank:05}"),
                bytes: sizes[size_idx],
                weight: popularity.pmf(rank + 1),
            })
            .collect();
        Workload {
            name: spec.name.to_string(),
            files,
            popularity,
            requests_in_log: spec.requests,
        }
    }

    /// The trace name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The files, most popular first.
    pub fn files(&self) -> &[WorkloadFile] {
        &self.files
    }

    /// Number of files.
    pub fn len(&self) -> usize {
        self.files.len()
    }

    /// Whether the workload has no files.
    pub fn is_empty(&self) -> bool {
        self.files.is_empty()
    }

    /// Total bytes across files.
    pub fn total_bytes(&self) -> u64 {
        self.files.iter().map(|f| f.bytes).sum()
    }

    /// The number of requests in the original log (for replay sizing).
    pub fn requests_in_log(&self) -> u64 {
        self.requests_in_log
    }

    /// Samples one request: returns the file index (popularity rank).
    pub fn sample_request(&self, rng: &mut SimRng) -> usize {
        self.popularity.sample(rng) - 1
    }

    /// Expected request size `Σ pᵢ·sizeᵢ`.
    pub fn mean_request_bytes(&self) -> f64 {
        self.files.iter().map(|f| f.weight * f.bytes as f64).sum()
    }

    /// Fraction of requests going to the `k` most popular files.
    pub fn request_share_of_top(&self, k: usize) -> f64 {
        self.files.iter().take(k).map(|f| f.weight).sum()
    }

    /// Fraction of total bytes held by the `k` most popular files.
    pub fn byte_share_of_top(&self, k: usize) -> f64 {
        let top: u64 = self.files.iter().take(k).map(|f| f.bytes).sum();
        top as f64 / self.total_bytes() as f64
    }

    /// A stratified sub-workload of roughly `target_bytes`: every k-th
    /// file by popularity rank, preserving both the size distribution
    /// and the popularity profile of the full trace.
    ///
    /// The §5.5 sweep varies the data-set size while the workload's
    /// *character* (Fig. 9's curves, 17KB mean request) stays fixed;
    /// literal log prefixes skew toward small popular files, so the
    /// sweep uses this sampler instead (documented in DESIGN.md).
    pub fn stratified_subset(&self, target_bytes: u64) -> Workload {
        let total = self.total_bytes();
        if target_bytes >= total {
            return self.clone();
        }
        // Every (1/density)-th file by rank; bisect the density until the
        // byte total lands on target. Rank-striding keeps the subset's
        // size distribution and popularity profile equal to the trace's.
        let select = |density: f64| -> (Vec<usize>, u64) {
            let mut picked = Vec::new();
            let mut bytes = 0u64;
            // Start full so the head ranks (which carry most request
            // mass) are always present; the tail is strided.
            let mut acc = 1.0f64;
            for (i, f) in self.files.iter().enumerate() {
                if acc >= 1.0 {
                    acc -= 1.0;
                    picked.push(i);
                    bytes += f.bytes;
                }
                acc += density;
            }
            (picked, bytes)
        };
        let (mut lo, mut hi) = (0.0f64, 1.0f64);
        let mut best = select(target_bytes as f64 / total as f64);
        for _ in 0..24 {
            let mid = (lo + hi) / 2.0;
            let cand = select(mid);
            if (cand.1 as i64 - target_bytes as i64).abs()
                < (best.1 as i64 - target_bytes as i64).abs()
            {
                best = cand.clone();
            }
            if cand.1 < target_bytes {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let picked = best.0;
        let total_weight: f64 = picked.iter().map(|&i| self.files[i].weight).sum();
        let files: Vec<WorkloadFile> = picked
            .iter()
            .map(|&i| {
                let f = &self.files[i];
                WorkloadFile {
                    name: f.name.clone(),
                    bytes: f.bytes,
                    weight: f.weight / total_weight,
                }
            })
            .collect();
        let weights: Vec<f64> = files.iter().map(|f| f.weight).collect();
        Workload {
            name: format!("{}-{}MB", self.name, target_bytes >> 20),
            popularity: zipf_from_weights(&weights),
            files,
            requests_in_log: self.requests_in_log,
        }
    }

    /// A prefix sub-workload covering roughly `target_bytes` of data,
    /// built from first-appearance order of a simulated log (the §5.5
    /// "prefixes of the log" methodology). Weights are renormalized.
    pub fn log_prefix(&self, target_bytes: u64, seed: u64) -> Workload {
        let mut rng = SimRng::new(seed ^ 0xF1F0);
        let mut seen = vec![false; self.files.len()];
        let mut order = Vec::new();
        let mut bytes = 0u64;
        // Walk a sampled log, collecting first appearances, until the
        // appeared files cover the target data-set size. The tail beyond
        // the target is dropped.
        let mut guard = 0u64;
        while bytes < target_bytes && guard < 100_000_000 {
            guard += 1;
            let idx = self.sample_request(&mut rng);
            if !seen[idx] {
                seen[idx] = true;
                bytes += self.files[idx].bytes;
                order.push(idx);
            }
        }
        let total_weight: f64 = order.iter().map(|&i| self.files[i].weight).sum();
        let mut files: Vec<WorkloadFile> = order
            .iter()
            .map(|&i| {
                let f = &self.files[i];
                WorkloadFile {
                    name: f.name.clone(),
                    bytes: f.bytes,
                    weight: f.weight / total_weight,
                }
            })
            .collect();
        // Keep popularity order so rank-based helpers stay meaningful.
        files.sort_by(|a, b| b.weight.partial_cmp(&a.weight).expect("no NaN"));
        let weights: Vec<f64> = files.iter().map(|f| f.weight).collect();
        Workload {
            name: format!("{}-{}MB", self.name, target_bytes >> 20),
            popularity: zipf_from_weights(&weights),
            files,
            requests_in_log: self.requests_in_log,
        }
    }
}

/// Builds an exact sampler over arbitrary normalized weights by abusing
/// `Zipf`'s cumulative machinery (it is just an inverse-CDF table).
fn zipf_from_weights(weights: &[f64]) -> Zipf {
    // Zipf::new only supports the k^-s family, so build a tiny shim: a
    // Zipf with s=0 has uniform pmf; we need the real weights, so we
    // construct via the public API obtainable path: sample by rejection
    // would be wasteful. Instead approximate: the files are already in
    // descending-weight order and renormalized; fit is unnecessary
    // because `sample_request` only needs *some* consistent sampler.
    // We therefore build an explicit CDF Zipf replacement below.
    Zipf::from_cdf(weights)
}

/// Calibrates the size↔rank assignment so the workload's expected
/// request size matches the spec, by bisection on the fraction of
/// popular ranks whose sizes are anti-sorted (popular → small).
fn calibrate_assignment(
    sizes_sorted: &[u64],
    popularity: &Zipf,
    spec: &TraceSpec,
    rng: &mut SimRng,
) -> Vec<usize> {
    let n = sizes_sorted.len();
    // Base: a deterministic random permutation (no correlation).
    let mut base: Vec<usize> = (0..n).collect();
    rng.shuffle(&mut base);
    let target = spec.mean_request_bytes as f64;

    let build = |fraction: f64| -> Vec<usize> {
        let k = ((n as f64) * fraction).round() as usize;
        let mut assign = base.clone();
        // The k most popular ranks swap their sizes for the k smallest
        // size indices, anti-sorted (most popular gets the smallest).
        // The displaced sizes go to the ranks that held the small ones.
        let mut holders: Vec<(usize, usize)> = assign
            .iter()
            .enumerate()
            .filter(|&(_, &sidx)| sidx < k)
            .map(|(rank, &sidx)| (rank, sidx))
            .collect();
        // Ranks 0..k take size indices 0..k in order; previous holders
        // receive the sizes ranks 0..k held, preserving the multiset.
        let displaced: Vec<usize> = (0..k.min(n)).map(|r| assign[r]).collect();
        for (r, slot) in assign.iter_mut().enumerate().take(k.min(n)) {
            *slot = r;
        }
        let mut spare = displaced
            .into_iter()
            .filter(|&s| s >= k)
            .collect::<Vec<_>>();
        for (rank, _) in holders.drain(..) {
            if rank >= k {
                if let Some(s) = spare.pop() {
                    assign[rank] = s;
                }
            }
        }
        assign
    };

    let mean_of = |assign: &[usize]| -> f64 {
        assign
            .iter()
            .enumerate()
            .map(|(rank, &sidx)| popularity.pmf(rank + 1) * sizes_sorted[sidx] as f64)
            .sum()
    };

    // Bisection: fraction 0 gives the uncorrelated mean (≈ mean file
    // size), fraction 1 gives the fully anti-sorted minimum.
    let (mut lo, mut hi) = (0.0f64, 1.0f64);
    let mut best = build(1.0);
    let mut best_err = (mean_of(&best) - target).abs();
    for _ in 0..24 {
        let mid = (lo + hi) / 2.0;
        let cand = build(mid);
        let m = mean_of(&cand);
        let err = (m - target).abs();
        if err < best_err {
            best_err = err;
            best = cand;
        }
        if m > target {
            // Too large: need more anti-correlation.
            lo = mid;
        } else {
            hi = mid;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subtrace_matches_published_stats() {
        let spec = TraceSpec::subtrace_150mb();
        let w = Workload::synthesize(&spec, 42);
        assert_eq!(w.len(), spec.files);
        // Total within rounding of 150MB.
        let total = w.total_bytes() as f64;
        assert!(
            (total / spec.total_bytes as f64 - 1.0).abs() < 0.02,
            "{total}"
        );
        // Mean request size within 10% of 17KB.
        let mean_req = w.mean_request_bytes();
        assert!(
            (mean_req / spec.mean_request_bytes as f64 - 1.0).abs() < 0.10,
            "mean request {mean_req}"
        );
        // Fig. 9 anchors: top 1000 files ≈ 74% of requests, ≈20% of bytes.
        let req_share = w.request_share_of_top(1000);
        assert!((req_share - 0.74).abs() < 0.08, "request share {req_share}");
        let byte_share = w.byte_share_of_top(1000);
        assert!(byte_share < 0.45, "byte share {byte_share}");
    }

    #[test]
    fn ece_concentration_anchor() {
        let spec = TraceSpec::ece();
        let w = Workload::synthesize(&spec, 7);
        // Fig. 7: top 5000 files ≈ 95% of requests.
        let share = w.request_share_of_top(5000);
        assert!((share - 0.95).abs() < 0.04, "share {share}");
    }

    #[test]
    fn sampling_follows_weights() {
        let spec = TraceSpec::subtrace_150mb();
        let w = Workload::synthesize(&spec, 11);
        let mut rng = SimRng::new(3);
        let n = 50_000;
        let hits_top = (0..n).filter(|_| w.sample_request(&mut rng) < 1000).count();
        let expect = w.request_share_of_top(1000);
        let got = hits_top as f64 / n as f64;
        assert!((got - expect).abs() < 0.02, "got {got} expect {expect}");
    }

    #[test]
    fn determinism() {
        let spec = TraceSpec::subtrace_150mb();
        let a = Workload::synthesize(&spec, 1);
        let b = Workload::synthesize(&spec, 1);
        assert_eq!(a.files()[0].bytes, b.files()[0].bytes);
        assert_eq!(a.total_bytes(), b.total_bytes());
    }

    #[test]
    fn stratified_subset_preserves_character() {
        let spec = TraceSpec::subtrace_150mb();
        let w = Workload::synthesize(&spec, 42);
        let sub = w.stratified_subset(30 << 20);
        let total = sub.total_bytes();
        let target = 30u64 << 20;
        assert!(
            total.abs_diff(target) < target / 5,
            "total {total} vs target {target}"
        );
        // Mean request size stays near the full trace's.
        let full_mean = w.mean_request_bytes();
        let sub_mean = sub.mean_request_bytes();
        assert!(
            (sub_mean / full_mean - 1.0).abs() < 0.35,
            "sub mean {sub_mean} vs full {full_mean}"
        );
        let sum: f64 = sub.files().iter().map(|f| f.weight).sum();
        assert!((sum - 1.0).abs() < 1e-9);
        // Requesting more than the trace returns the trace.
        assert_eq!(w.stratified_subset(1 << 40).len(), w.len());
    }

    #[test]
    fn log_prefix_scales_dataset() {
        let spec = TraceSpec::subtrace_150mb();
        let w = Workload::synthesize(&spec, 42);
        let half = w.log_prefix(75 << 20, 9);
        let total = half.total_bytes();
        assert!(total >= 75 << 20, "prefix covers the target");
        assert!(
            total < 100 << 20,
            "prefix does not overshoot wildly: {total}"
        );
        // Weights renormalized.
        let sum: f64 = half.files().iter().map(|f| f.weight).sum();
        assert!((sum - 1.0).abs() < 1e-9);
        // Popular files appear early in a log, so the prefix skews
        // popular: its mean request size stays in the same ballpark.
        let m = half.mean_request_bytes();
        assert!(m > 2_000.0 && m < 80_000.0, "mean {m}");
    }
}

//! Cumulative-distribution series for Figures 7 and 9.
//!
//! The paper plots, for files sorted by request count, the cumulative
//! fraction of requests and of static data size. These series are what
//! the `fig07`/`fig09` regenerators print.

use crate::workload::Workload;

/// One point of the Fig. 7 / Fig. 9 curves.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CdfPoint {
    /// Number of files considered (sorted by request count, descending).
    pub files: usize,
    /// Cumulative fraction of all requests they receive.
    pub cum_requests: f64,
    /// Cumulative fraction of the total static data size they hold.
    pub cum_bytes: f64,
}

/// Computes the cumulative curves, decimated to at most `points` points
/// (plus the exact endpoint).
pub fn cdf_series(w: &Workload, points: usize) -> Vec<CdfPoint> {
    let n = w.len();
    assert!(points >= 2 && n >= 1);
    let total_bytes = w.total_bytes() as f64;
    let mut out = Vec::with_capacity(points + 1);
    let stride = (n as f64 / points as f64).max(1.0);
    let mut cum_req = 0.0;
    let mut cum_bytes = 0u64;
    let mut next_emit = 0.0;
    for (i, f) in w.files().iter().enumerate() {
        cum_req += f.weight;
        cum_bytes += f.bytes;
        if (i + 1) as f64 >= next_emit || i + 1 == n {
            out.push(CdfPoint {
                files: i + 1,
                cum_requests: cum_req,
                cum_bytes: cum_bytes as f64 / total_bytes,
            });
            next_emit += stride;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::TraceSpec;
    use crate::workload::Workload;

    #[test]
    fn series_is_monotone_and_ends_at_one() {
        let w = Workload::synthesize(&TraceSpec::subtrace_150mb(), 4);
        let series = cdf_series(&w, 50);
        assert!(series.len() >= 50);
        for pair in series.windows(2) {
            assert!(pair[1].cum_requests >= pair[0].cum_requests);
            assert!(pair[1].cum_bytes >= pair[0].cum_bytes);
            assert!(pair[1].files > pair[0].files);
        }
        let last = series.last().unwrap();
        assert_eq!(last.files, w.len());
        assert!((last.cum_requests - 1.0).abs() < 1e-9);
        assert!((last.cum_bytes - 1.0).abs() < 1e-9);
    }

    #[test]
    fn requests_concentrate_faster_than_bytes() {
        // The defining shape of Figs. 7/9: the request curve dominates
        // the size curve everywhere.
        let w = Workload::synthesize(&TraceSpec::subtrace_150mb(), 4);
        let series = cdf_series(&w, 20);
        let mid = &series[series.len() / 4];
        assert!(
            mid.cum_requests > mid.cum_bytes,
            "requests {} vs bytes {}",
            mid.cum_requests,
            mid.cum_bytes
        );
    }
}

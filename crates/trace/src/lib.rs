#![warn(missing_docs)]
//! Workload synthesis: the Rice University access-log traces (paper
//! §5.4–§5.5, Figures 7 and 9).
//!
//! The original ECE / CS / MERGED logs are not available; the paper
//! publishes their summary statistics (request count, file count, total
//! bytes, mean request size) and cumulative-distribution anchor points.
//! This crate synthesizes workloads matching those statistics:
//!
//! * file sizes: log-normal, scaled to the exact published total;
//! * request popularity: Zipf over file ranks, exponent per trace;
//! * size↔popularity assignment: calibrated by bisection so the mean
//!   *request* size matches the published value (popular web files are
//!   smaller than the average file — all three traces show mean request
//!   size well below mean file size).
//!
//! Every preset's achieved statistics are verified in tests and printed
//! by the Fig. 7 / Fig. 9 regenerators next to the paper's numbers.

pub mod cdf;
pub mod replay;
pub mod spec;
pub mod workload;

pub use cdf::CdfPoint;
pub use replay::{RandomSampler, RequestStream, SharedLogReplay};
pub use spec::TraceSpec;
pub use workload::{Workload, WorkloadFile};

//! Request-stream generation for the two replay methodologies of §5.4
//! and §5.5.

use iolite_sim::SimRng;

use crate::workload::Workload;

/// A source of requests: each call yields the index of the file the next
/// client request targets, or `None` when the stream is exhausted.
pub trait RequestStream {
    /// The next request's file index.
    fn next_request(&mut self, rng: &mut SimRng) -> Option<usize>;

    /// Total requests this stream will produce (`None` if unbounded).
    fn remaining(&self) -> Option<u64>;
}

/// The §5.4 methodology: "the clients share the access log, and as each
/// request finishes, the client issues the next unsent request from the
/// log". We pre-materialize a popularity-faithful log of bounded length
/// and hand entries out in order.
#[derive(Debug)]
pub struct SharedLogReplay {
    log: Vec<u32>,
    cursor: usize,
}

impl SharedLogReplay {
    /// Builds a log of `len` entries sampled from the workload's
    /// popularity distribution (a statistically equivalent prefix of the
    /// full multi-million-request log).
    pub fn new(workload: &Workload, len: u64, seed: u64) -> Self {
        let mut rng = SimRng::new(seed ^ 0x0106);
        let log = (0..len)
            .map(|_| workload.sample_request(&mut rng) as u32)
            .collect();
        SharedLogReplay { log, cursor: 0 }
    }

    /// Entries in the log.
    pub fn len(&self) -> usize {
        self.log.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.log.is_empty()
    }
}

impl RequestStream for SharedLogReplay {
    fn next_request(&mut self, _rng: &mut SimRng) -> Option<usize> {
        let entry = self.log.get(self.cursor)?;
        self.cursor += 1;
        Some(*entry as usize)
    }

    fn remaining(&self) -> Option<u64> {
        Some((self.log.len() - self.cursor) as u64)
    }
}

/// The §5.5 methodology ("similar to the SpecWeb96 benchmark"): clients
/// "randomly pick entries from the subtraces", i.e. sample the log with
/// replacement — equivalently, sample files by popularity weight.
#[derive(Debug)]
pub struct RandomSampler {
    workload: Workload,
    budget: Option<u64>,
}

impl RandomSampler {
    /// An unbounded sampler over the workload.
    pub fn new(workload: Workload) -> Self {
        RandomSampler {
            workload,
            budget: None,
        }
    }

    /// A sampler that stops after `n` requests.
    pub fn with_budget(workload: Workload, n: u64) -> Self {
        RandomSampler {
            workload,
            budget: Some(n),
        }
    }
}

impl RequestStream for RandomSampler {
    fn next_request(&mut self, rng: &mut SimRng) -> Option<usize> {
        if let Some(b) = &mut self.budget {
            if *b == 0 {
                return None;
            }
            *b -= 1;
        }
        Some(self.workload.sample_request(rng))
    }

    fn remaining(&self) -> Option<u64> {
        self.budget
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::TraceSpec;

    fn workload() -> Workload {
        Workload::synthesize(&TraceSpec::subtrace_150mb(), 5)
    }

    #[test]
    fn shared_log_is_deterministic_and_ordered() {
        let w = workload();
        let mut a = SharedLogReplay::new(&w, 100, 1);
        let mut b = SharedLogReplay::new(&w, 100, 1);
        let mut rng = SimRng::new(0);
        for _ in 0..100 {
            assert_eq!(a.next_request(&mut rng), b.next_request(&mut rng));
        }
        assert_eq!(a.next_request(&mut rng), None);
        assert_eq!(a.remaining(), Some(0));
    }

    #[test]
    fn random_sampler_budget() {
        let w = workload();
        let mut s = RandomSampler::with_budget(w, 5);
        let mut rng = SimRng::new(2);
        let mut n = 0;
        while s.next_request(&mut rng).is_some() {
            n += 1;
        }
        assert_eq!(n, 5);
    }

    #[test]
    fn unbounded_sampler_keeps_going() {
        let w = workload();
        let files = w.len();
        let mut s = RandomSampler::new(w);
        let mut rng = SimRng::new(3);
        for _ in 0..1000 {
            let idx = s.next_request(&mut rng).unwrap();
            assert!(idx < files);
        }
        assert_eq!(s.remaining(), None);
    }
}

//! Published trace statistics (Figures 7 and 9).

/// The summary statistics of one access-log trace, as published.
#[derive(Debug, Clone)]
pub struct TraceSpec {
    /// Trace name as used in the paper.
    pub name: &'static str,
    /// Number of distinct files.
    pub files: usize,
    /// Total static data size in bytes.
    pub total_bytes: u64,
    /// Number of requests in the log.
    pub requests: u64,
    /// Mean request size in bytes.
    pub mean_request_bytes: u64,
    /// Zipf popularity exponent (chosen to match the published
    /// request-concentration anchors; see crate docs).
    pub zipf_s: f64,
    /// Log-normal shape of the file-size distribution.
    pub size_sigma: f64,
}

impl TraceSpec {
    /// The ECE department trace: "783529 requests, 10195 files, 523 MB
    /// total", mean request 23KB; "the 5000 most heavily requested files
    /// ... constituted 39% of the total static data size and 95% of all
    /// requests" (Fig. 7).
    pub fn ece() -> Self {
        TraceSpec {
            name: "ECE",
            files: 10_195,
            total_bytes: 523 << 20,
            requests: 783_529,
            mean_request_bytes: 23 << 10,
            zipf_s: 1.10,
            size_sigma: 1.4,
        }
    }

    /// The CS department trace: "3746842 requests, 26948 files, 933 MB
    /// total", mean request 20KB (Fig. 7).
    pub fn cs() -> Self {
        TraceSpec {
            name: "CS",
            files: 26_948,
            total_bytes: 933 << 20,
            requests: 3_746_842,
            mean_request_bytes: 20 << 10,
            zipf_s: 1.05,
            size_sigma: 1.4,
        }
    }

    /// The MERGED trace (all Rice campus servers): "2290909 requests,
    /// 37703 files, 1418 MB total", mean request 17KB; the paper notes
    /// its "large working set and poor locality" (Fig. 7, §5.4).
    pub fn merged() -> Self {
        TraceSpec {
            name: "MERGED",
            files: 37_703,
            total_bytes: 1_418 << 20,
            requests: 2_290_909,
            mean_request_bytes: 17 << 10,
            zipf_s: 0.80,
            size_sigma: 1.4,
        }
    }

    /// The 150MB MERGED subtrace of §5.5: "28403 requests, 5459 files,
    /// 150 MB total"; "the 1000 most frequently requested files were
    /// responsible for 20% of the total static data size but 74% of all
    /// requests" (Fig. 9).
    pub fn subtrace_150mb() -> Self {
        TraceSpec {
            name: "MERGED-150MB",
            files: 5_459,
            total_bytes: 150 << 20,
            requests: 28_403,
            mean_request_bytes: 17 << 10,
            zipf_s: 0.90,
            size_sigma: 1.4,
        }
    }

    /// Mean file size implied by the spec.
    pub fn mean_file_bytes(&self) -> u64 {
        self.total_bytes / self.files as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper_figures() {
        let ece = TraceSpec::ece();
        assert_eq!(ece.files, 10_195);
        assert_eq!(ece.requests, 783_529);
        assert_eq!(ece.total_bytes >> 20, 523);
        let cs = TraceSpec::cs();
        assert_eq!(cs.files, 26_948);
        let merged = TraceSpec::merged();
        assert_eq!(merged.files, 37_703);
        let sub = TraceSpec::subtrace_150mb();
        assert_eq!(sub.files, 5_459);
        assert_eq!(sub.requests, 28_403);
    }

    #[test]
    fn request_size_below_file_size() {
        // All traces: popular files are smaller than the average file.
        for spec in [
            TraceSpec::ece(),
            TraceSpec::cs(),
            TraceSpec::merged(),
            TraceSpec::subtrace_150mb(),
        ] {
            assert!(
                spec.mean_request_bytes < spec.mean_file_bytes(),
                "{}",
                spec.name
            );
        }
    }
}

//! Event queue with deterministic tie-breaking.
//!
//! Experiment drivers (the Web-server harness, the application pipelines)
//! define their own event types and own the event loop; this module only
//! provides the time-ordered queue. Events scheduled for the same instant
//! pop in insertion order, which makes runs reproducible regardless of
//! `BinaryHeap` internals.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// An entry in the queue: ordering key is `(time, sequence)`.
struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: `BinaryHeap` is a max-heap and we want the earliest
        // (time, seq) first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A time-ordered event queue with FIFO tie-breaking at equal timestamps.
///
/// # Examples
///
/// ```
/// use iolite_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_us(2.0), "late");
/// q.schedule(SimTime::from_us(1.0), "early");
/// q.schedule(SimTime::from_us(1.0), "early-second");
///
/// assert_eq!(q.pop(), Some((SimTime::from_us(1.0), "early")));
/// assert_eq!(q.pop(), Some((SimTime::from_us(1.0), "early-second")));
/// assert_eq!(q.pop(), Some((SimTime::from_us(2.0), "late")));
/// assert_eq!(q.pop(), None);
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// Schedules `event` to fire at absolute time `at`.
    ///
    /// Scheduling in the past is clamped to the current clock; the event
    /// fires "now" after already-queued events with the same timestamp.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        let at = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, event });
    }

    /// Schedules `event` to fire `delay` after the current clock.
    pub fn schedule_after(&mut self, delay: SimTime, event: E) {
        self.schedule(self.now + delay, event);
    }

    /// Removes and returns the earliest event, advancing the clock to its
    /// timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let entry = self.heap.pop()?;
        debug_assert!(entry.at >= self.now, "time went backwards");
        self.now = entry.at;
        Some((entry.at, entry.event))
    }

    /// Returns the timestamp of the next event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// The current simulated time (timestamp of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue has no pending events.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_us(3.0), 3);
        q.schedule(SimTime::from_us(1.0), 1);
        q.schedule(SimTime::from_us(2.0), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn equal_times_pop_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(SimTime::from_us(1.0), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_us(5.0), ());
        q.pop();
        assert_eq!(q.now(), SimTime::from_us(5.0));
        // Scheduling in the past clamps to now.
        q.schedule(SimTime::from_us(1.0), ());
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_us(5.0));
    }

    #[test]
    fn schedule_after_is_relative() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_us(10.0), "a");
        q.pop();
        q.schedule_after(SimTime::from_us(5.0), "b");
        let (t, e) = q.pop().unwrap();
        assert_eq!(e, "b");
        assert_eq!(t, SimTime::from_us(15.0));
    }

    #[test]
    fn len_and_empty() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(SimTime::ZERO, ());
        assert_eq!(q.len(), 1);
        assert_eq!(q.peek_time(), Some(SimTime::ZERO));
        q.pop();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }
}

//! Simulated time.
//!
//! Time is kept in integer nanoseconds so that event ordering is exact and
//! platform-independent. All cost-model arithmetic happens in `f64`
//! microseconds and is rounded once, on conversion to [`SimTime`].

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, in nanoseconds since the start of the run.
///
/// `SimTime` is totally ordered and supports saturating arithmetic with
/// durations expressed through the convenience constructors
/// ([`SimTime::from_us`], [`SimTime::from_ms`], [`SimTime::from_secs`]).
///
/// # Examples
///
/// ```
/// use iolite_sim::SimTime;
///
/// let t = SimTime::ZERO + SimTime::from_us(2.5);
/// assert_eq!(t.as_nanos(), 2_500);
/// assert!(t < SimTime::from_ms(1.0));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);

    /// The largest representable instant; used as an "infinitely far"
    /// sentinel for idle resources.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates a time value from integer nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Creates a time value from (possibly fractional) microseconds.
    ///
    /// Negative or non-finite inputs clamp to zero; the cost model never
    /// produces them, but clamping keeps the simulation total.
    pub fn from_us(us: f64) -> Self {
        if us.is_finite() && us > 0.0 {
            SimTime((us * 1_000.0).round() as u64)
        } else {
            SimTime(0)
        }
    }

    /// Creates a time value from (possibly fractional) milliseconds.
    pub fn from_ms(ms: f64) -> Self {
        Self::from_us(ms * 1_000.0)
    }

    /// Creates a time value from (possibly fractional) seconds.
    pub fn from_secs(s: f64) -> Self {
        Self::from_us(s * 1_000_000.0)
    }

    /// Returns the raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the time as fractional microseconds.
    pub fn as_us(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Returns the time as fractional milliseconds.
    pub fn as_ms(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Returns the time as fractional seconds.
    pub fn as_secs(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Saturating difference, returned as a duration-like `SimTime`.
    pub fn saturating_sub(self, other: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(other.0))
    }

    /// Returns the later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }
}

impl Add for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for SimTime {
    type Output = SimTime;

    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_us())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_ms())
        } else {
            write!(f, "{:.3}us", self.as_us())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        let t = SimTime::from_us(123.456);
        assert_eq!(t.as_nanos(), 123_456);
        assert!((t.as_us() - 123.456).abs() < 1e-9);
        assert_eq!(SimTime::from_ms(1.0), SimTime::from_us(1000.0));
        assert_eq!(SimTime::from_secs(1.0), SimTime::from_ms(1000.0));
    }

    #[test]
    fn negative_and_nan_clamp_to_zero() {
        assert_eq!(SimTime::from_us(-5.0), SimTime::ZERO);
        assert_eq!(SimTime::from_us(f64::NAN), SimTime::ZERO);
        assert_eq!(SimTime::from_us(f64::INFINITY).as_nanos(), 0);
    }

    #[test]
    fn arithmetic_saturates() {
        assert_eq!(SimTime::MAX + SimTime::from_us(1.0), SimTime::MAX);
        assert_eq!(SimTime::ZERO - SimTime::from_us(1.0), SimTime::ZERO);
        assert_eq!(
            SimTime::from_us(5.0).saturating_sub(SimTime::from_us(7.0)),
            SimTime::ZERO
        );
    }

    #[test]
    fn ordering_and_max() {
        let a = SimTime::from_us(1.0);
        let b = SimTime::from_us(2.0);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(b.max(a), b);
    }

    #[test]
    fn display_scales_units() {
        assert_eq!(format!("{}", SimTime::from_us(5.0)), "5.000us");
        assert_eq!(format!("{}", SimTime::from_ms(5.0)), "5.000ms");
        assert_eq!(format!("{}", SimTime::from_secs(5.0)), "5.000s");
    }
}

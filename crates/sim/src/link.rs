//! Network link capacity model.
//!
//! The paper's testbed connects the server through five 100Mb/s Fast
//! Ethernet adaptors to five client machines (§5). We model each adaptor
//! as a byte-rate pipe: capacity is accounted FIFO (a transfer occupies
//! the link for `bytes / rate`), while the *completion* time seen by a
//! client additionally respects the TCP window limit
//! `bytes / (Tss / RTT)` and one-way propagation delay. This keeps
//! aggregate throughput exact under saturation (what every figure reports)
//! while still producing the response-time inflation that drives the WAN
//! experiment of §5.7.

use crate::time::SimTime;

/// One simulated network adaptor.
#[derive(Debug, Clone)]
pub struct Link {
    rate_bytes_per_sec: f64,
    next_free: SimTime,
    bytes_sent: u64,
    busy: SimTime,
}

impl Link {
    /// Creates a link with the given effective data rate in megabits per
    /// second.
    pub fn new(rate_mbit_s: f64) -> Self {
        Link {
            rate_bytes_per_sec: rate_mbit_s * 1_000_000.0 / 8.0,
            next_free: SimTime::ZERO,
            bytes_sent: 0,
            busy: SimTime::ZERO,
        }
    }

    /// Time the link needs to serialize `bytes`.
    pub fn wire_time(&self, bytes: u64) -> SimTime {
        SimTime::from_secs(bytes as f64 / self.rate_bytes_per_sec)
    }

    /// Transmits `bytes` starting no earlier than `now`.
    ///
    /// `window_rate_bytes_per_sec` caps the connection's own throughput
    /// (socket send buffer / round-trip time); pass `f64::INFINITY` for a
    /// LAN with negligible RTT. `one_way_delay` is added once for
    /// propagation. Returns the completion time at the receiver.
    pub fn transmit(
        &mut self,
        now: SimTime,
        bytes: u64,
        window_rate_bytes_per_sec: f64,
        one_way_delay: SimTime,
    ) -> SimTime {
        let start = self.next_free.max(now);
        let occupy = self.wire_time(bytes);
        self.next_free = start + occupy;
        self.busy += occupy;
        self.bytes_sent += bytes;
        let window_time =
            if window_rate_bytes_per_sec.is_finite() && window_rate_bytes_per_sec > 0.0 {
                SimTime::from_secs(bytes as f64 / window_rate_bytes_per_sec)
            } else {
                SimTime::ZERO
            };
        // The receiver sees the slower of wire serialization and window
        // pacing, plus propagation.
        start + occupy.max(window_time) + one_way_delay
    }

    /// Total bytes ever transmitted.
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_sent
    }

    /// Total serialization time accumulated.
    pub fn busy_time(&self) -> SimTime {
        self.busy
    }

    /// Link utilization over `[0, horizon]`.
    pub fn utilization(&self, horizon: SimTime) -> f64 {
        if horizon == SimTime::ZERO {
            0.0
        } else {
            (self.busy.as_secs() / horizon.as_secs()).min(1.0)
        }
    }
}

/// The server's set of adaptors, with a static client→link assignment.
///
/// The paper runs clients on five machines, one per adaptor; we assign
/// client `i` to link `i % n`, matching that topology.
#[derive(Debug, Clone)]
pub struct LinkSet {
    links: Vec<Link>,
}

impl LinkSet {
    /// Creates `n` identical links of `rate_mbit_s` each.
    pub fn new(n: usize, rate_mbit_s: f64) -> Self {
        assert!(n > 0, "at least one link required");
        LinkSet {
            links: (0..n).map(|_| Link::new(rate_mbit_s)).collect(),
        }
    }

    /// The link serving a given client.
    pub fn link_for_client(&mut self, client: usize) -> &mut Link {
        let n = self.links.len();
        &mut self.links[client % n]
    }

    /// Number of links.
    pub fn len(&self) -> usize {
        self.links.len()
    }

    /// Whether the set is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.links.is_empty()
    }

    /// Aggregate bytes sent over all links.
    pub fn total_bytes(&self) -> u64 {
        self.links.iter().map(|l| l.bytes_sent()).sum()
    }

    /// Mean utilization across links over `[0, horizon]`.
    pub fn mean_utilization(&self, horizon: SimTime) -> f64 {
        let total: f64 = self.links.iter().map(|l| l.utilization(horizon)).sum();
        total / self.links.len() as f64
    }

    /// Aggregate capacity in megabits per second.
    pub fn aggregate_mbit_s(&self) -> f64 {
        self.links
            .iter()
            .map(|l| l.rate_bytes_per_sec * 8.0 / 1_000_000.0)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_time_matches_rate() {
        let l = Link::new(80.0); // 10 MB/s.
        assert_eq!(l.wire_time(10_000_000), SimTime::from_secs(1.0));
    }

    #[test]
    fn transfers_queue_on_capacity() {
        let mut l = Link::new(80.0);
        let a = l.transmit(SimTime::ZERO, 10_000_000, f64::INFINITY, SimTime::ZERO);
        let b = l.transmit(SimTime::ZERO, 10_000_000, f64::INFINITY, SimTime::ZERO);
        assert_eq!(a, SimTime::from_secs(1.0));
        assert_eq!(b, SimTime::from_secs(2.0));
        assert_eq!(l.bytes_sent(), 20_000_000);
    }

    #[test]
    fn window_limit_dominates_when_slower() {
        let mut l = Link::new(80.0);
        // Window rate 1 MB/s is slower than the 10 MB/s wire.
        let done = l.transmit(SimTime::ZERO, 1_000_000, 1_000_000.0, SimTime::ZERO);
        assert_eq!(done, SimTime::from_secs(1.0));
        // But capacity accounting only charges the wire time.
        assert_eq!(l.busy_time(), SimTime::from_secs(0.1));
    }

    #[test]
    fn propagation_delay_added_once() {
        let mut l = Link::new(80.0);
        let done = l.transmit(
            SimTime::ZERO,
            10_000_000,
            f64::INFINITY,
            SimTime::from_ms(75.0),
        );
        assert_eq!(done, SimTime::from_secs(1.075));
    }

    #[test]
    fn linkset_assigns_round_robin() {
        let mut s = LinkSet::new(5, 84.0);
        assert!((s.aggregate_mbit_s() - 420.0).abs() < 1e-9);
        s.link_for_client(0)
            .transmit(SimTime::ZERO, 1000, f64::INFINITY, SimTime::ZERO);
        s.link_for_client(5)
            .transmit(SimTime::ZERO, 1000, f64::INFINITY, SimTime::ZERO);
        s.link_for_client(1)
            .transmit(SimTime::ZERO, 1000, f64::INFINITY, SimTime::ZERO);
        assert_eq!(s.total_bytes(), 3000);
        // Clients 0 and 5 share link 0.
        assert_eq!(s.links[0].bytes_sent(), 2000);
        assert_eq!(s.links[1].bytes_sent(), 1000);
    }
}

//! Statistics collectors used by the experiment harness.

use std::fmt;

use crate::time::SimTime;

/// A monotonically increasing event counter.
#[derive(Debug, Clone, Copy, Default)]
pub struct Counter(u64);

impl Counter {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        Counter(0)
    }

    /// Adds one.
    pub fn incr(&mut self) {
        self.0 += 1;
    }

    /// Adds `n`.
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current count.
    pub fn get(&self) -> u64 {
        self.0
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Online summary of a stream of samples: count, mean, min, max and an
/// exact quantile over retained samples.
///
/// Retains every sample; experiments produce at most a few hundred
/// thousand samples per run, so exact quantiles are affordable and keep
/// EXPERIMENTS.md reproducible to the digit.
#[derive(Debug, Clone, Default)]
pub struct Summary {
    samples: Vec<f64>,
    sorted: bool,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Summary::default()
    }

    /// Records one sample.
    pub fn record(&mut self, v: f64) {
        self.samples.push(v);
        self.sorted = false;
    }

    /// Number of samples recorded.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// Arithmetic mean, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().sum::<f64>() / self.samples.len() as f64
        }
    }

    /// Smallest sample, or 0 when empty.
    pub fn min(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().copied().fold(f64::INFINITY, f64::min)
        }
    }

    /// Largest sample, or 0 when empty.
    pub fn max(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples
                .iter()
                .copied()
                .fold(f64::NEG_INFINITY, f64::max)
        }
    }

    /// Exact `q`-quantile (0 ≤ q ≤ 1) by nearest-rank, or 0 when empty.
    pub fn quantile(&mut self, q: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        if !self.sorted {
            self.samples
                .sort_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
            self.sorted = true;
        }
        let q = q.clamp(0.0, 1.0);
        let idx = ((self.samples.len() as f64 - 1.0) * q).round() as usize;
        self.samples[idx]
    }

    /// Sum of all samples.
    pub fn total(&self) -> f64 {
        self.samples.iter().sum()
    }
}

/// Measures throughput: bytes (or events) accumulated over simulated time.
#[derive(Debug, Clone, Copy, Default)]
pub struct RateMeter {
    amount: f64,
    started: SimTime,
    ended: SimTime,
}

impl RateMeter {
    /// Creates a meter with the window starting at `start`.
    pub fn new(start: SimTime) -> Self {
        RateMeter {
            amount: 0.0,
            started: start,
            ended: start,
        }
    }

    /// Records `amount` delivered at time `at`.
    pub fn record(&mut self, at: SimTime, amount: f64) {
        self.amount += amount;
        self.ended = self.ended.max(at);
    }

    /// Closes the measurement window at `at` without adding volume.
    pub fn close(&mut self, at: SimTime) {
        self.ended = self.ended.max(at);
    }

    /// Total amount recorded.
    pub fn total(&self) -> f64 {
        self.amount
    }

    /// Average rate in amount/second over the window.
    pub fn per_second(&self) -> f64 {
        let span = self.ended.saturating_sub(self.started).as_secs();
        if span <= 0.0 {
            0.0
        } else {
            self.amount / span
        }
    }

    /// Convenience: rate in megabits per second when amounts are bytes.
    pub fn mbit_per_sec(&self) -> f64 {
        self.per_second() * 8.0 / 1_000_000.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let mut c = Counter::new();
        c.incr();
        c.add(4);
        assert_eq!(c.get(), 5);
        assert_eq!(format!("{c}"), "5");
    }

    #[test]
    fn summary_statistics() {
        let mut s = Summary::new();
        for v in [4.0, 1.0, 3.0, 2.0, 5.0] {
            s.record(v);
        }
        assert_eq!(s.count(), 5);
        assert!((s.mean() - 3.0).abs() < 1e-12);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 5.0);
        assert_eq!(s.quantile(0.5), 3.0);
        assert_eq!(s.quantile(0.0), 1.0);
        assert_eq!(s.quantile(1.0), 5.0);
        assert!((s.total() - 15.0).abs() < 1e-12);
    }

    #[test]
    fn summary_empty_is_zero() {
        let mut s = Summary::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.quantile(0.5), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
    }

    #[test]
    fn rate_meter_computes_mbps() {
        let mut m = RateMeter::new(SimTime::ZERO);
        m.record(SimTime::from_secs(1.0), 500_000.0);
        m.record(SimTime::from_secs(2.0), 500_000.0);
        // 1_000_000 bytes over 2 seconds = 4 Mb/s.
        assert!((m.mbit_per_sec() - 4.0).abs() < 1e-9);
        assert_eq!(m.total(), 1_000_000.0);
    }

    #[test]
    fn rate_meter_zero_window() {
        let m = RateMeter::new(SimTime::ZERO);
        assert_eq!(m.per_second(), 0.0);
    }
}

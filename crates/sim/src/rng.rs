//! Deterministic pseudo-random number generation.
//!
//! Workload synthesis and replay need randomness that is reproducible
//! across platforms and Rust versions, so we implement xoshiro256++
//! (Blackman & Vigna) seeded through SplitMix64 rather than depending on
//! an external crate whose stream might change.

/// A seedable xoshiro256++ generator.
///
/// # Examples
///
/// ```
/// use iolite_sim::SimRng;
///
/// let mut a = SimRng::new(42);
/// let mut b = SimRng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        // SplitMix64 expansion of the seed, as recommended by the xoshiro
        // authors, so that nearby seeds give unrelated streams.
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let s = [next(), next(), next(), next()];
        SimRng { s }
    }

    /// Derives an independent generator for a named sub-stream.
    ///
    /// Used so that, e.g., file-size sampling and request sampling do not
    /// perturb each other when one consumes a different number of values.
    pub fn fork(&mut self, label: u64) -> SimRng {
        let base = self.next_u64();
        SimRng::new(base ^ label.wrapping_mul(0xA24B_AED4_963E_E407))
    }

    /// Returns the next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 high-quality bits into the mantissa.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in the open interval `(0, 1)`, safe for `ln()`.
    pub fn next_f64_open(&mut self) -> f64 {
        loop {
            let v = self.next_f64();
            if v > 0.0 {
                return v;
            }
        }
    }

    /// Uniform integer in `[0, bound)` using Lemire's rejection method.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Unbiased multiply-shift rejection sampling.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut l = m as u64;
        if l < bound {
            let t = bound.wrapping_neg() % bound;
            while l < t {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform usize in `[0, bound)`.
    pub fn next_index(&mut self, bound: usize) -> usize {
        self.next_below(bound as u64) as usize
    }

    /// Returns `true` with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.next_index(i + 1);
            items.swap(i, j);
        }
    }

    /// Standard normal deviate via Box–Muller.
    pub fn next_gaussian(&mut self) -> f64 {
        let u1 = self.next_f64_open();
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SimRng::new(3);
        for _ in 0..10_000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn next_below_respects_bound_and_covers_range() {
        let mut r = SimRng::new(4);
        let mut seen = [false; 10];
        for _ in 0..10_000 {
            let v = r.next_below(10);
            assert!(v < 10);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn mean_of_uniform_near_half() {
        let mut r = SimRng::new(5);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.next_f64()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gaussian_moments_reasonable() {
        let mut r = SimRng::new(6);
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| r.next_gaussian()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SimRng::new(8);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn forked_streams_are_independent() {
        let mut base = SimRng::new(9);
        let mut f1 = base.fork(1);
        let mut f2 = base.fork(2);
        let same = (0..100).filter(|_| f1.next_u64() == f2.next_u64()).count();
        assert_eq!(same, 0);
    }
}

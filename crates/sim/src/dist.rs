//! Sampling distributions for workload synthesis.
//!
//! The trace generator (Fig. 7 / Fig. 9 reproduction) needs Zipf-like
//! request popularity, log-normal file sizes, and empirical resampling.
//! All samplers draw from [`SimRng`] so experiments stay deterministic.

use crate::rng::SimRng;

/// Zipf(s) distribution over ranks `1..=n`, sampled exactly by inverse
/// CDF over precomputed cumulative weights.
///
/// Weight of rank `k` is `k^-s`. Exact inversion is affordable because
/// the trace generator uses at most a few tens of thousands of ranks.
///
/// # Examples
///
/// ```
/// use iolite_sim::{SimRng, Zipf};
///
/// let z = Zipf::new(100, 1.0);
/// let mut rng = SimRng::new(1);
/// let rank = z.sample(&mut rng);
/// assert!((1..=100).contains(&rank));
/// ```
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Creates a Zipf distribution over `n` ranks with exponent `s`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or `s` is negative/non-finite.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "need at least one rank");
        assert!(s.is_finite() && s >= 0.0, "exponent must be >= 0");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += (k as f64).powf(-s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Builds a sampler over arbitrary non-negative weights (rank `k`
    /// gets mass proportional to `weights[k-1]`). This generalizes the
    /// inverse-CDF machinery beyond the `k^-s` family — trace prefixes
    /// carry renormalized empirical weights.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or sums to zero.
    pub fn from_cdf(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "need at least one weight");
        let mut cdf = Vec::with_capacity(weights.len());
        let mut acc = 0.0;
        for &w in weights {
            assert!(w.is_finite() && w >= 0.0, "weights must be non-negative");
            acc += w;
            cdf.push(acc);
        }
        assert!(acc > 0.0, "weights must not all be zero");
        for v in &mut cdf {
            *v /= acc;
        }
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the distribution is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Probability mass of rank `k` (1-based).
    pub fn pmf(&self, k: usize) -> f64 {
        assert!(k >= 1 && k <= self.cdf.len());
        if k == 1 {
            self.cdf[0]
        } else {
            self.cdf[k - 1] - self.cdf[k - 2]
        }
    }

    /// Samples a rank in `1..=n`.
    pub fn sample(&self, rng: &mut SimRng) -> usize {
        let u = rng.next_f64();
        // partition_point returns the count of entries < u, i.e. the
        // 0-based index of the chosen rank.
        let idx = self.cdf.partition_point(|&c| c < u);
        idx.min(self.cdf.len() - 1) + 1
    }
}

/// Log-normal distribution parameterized by the underlying normal's
/// `mu` and `sigma`.
#[derive(Debug, Clone, Copy)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Creates a log-normal with location `mu` and shape `sigma` of the
    /// underlying normal.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is negative or non-finite.
    pub fn new(mu: f64, sigma: f64) -> Self {
        assert!(sigma.is_finite() && sigma >= 0.0);
        LogNormal { mu, sigma }
    }

    /// Creates a log-normal from a target mean and median.
    ///
    /// For a log-normal, `median = exp(mu)` and
    /// `mean = exp(mu + sigma^2 / 2)`, so both parameters are recoverable
    /// when `mean >= median`.
    ///
    /// # Panics
    ///
    /// Panics if `mean < median` or either is non-positive.
    pub fn from_mean_median(mean: f64, median: f64) -> Self {
        assert!(median > 0.0 && mean >= median, "need mean >= median > 0");
        let mu = median.ln();
        let sigma = (2.0 * (mean.ln() - mu)).max(0.0).sqrt();
        LogNormal { mu, sigma }
    }

    /// Theoretical mean `exp(mu + sigma^2/2)`.
    pub fn mean(&self) -> f64 {
        (self.mu + self.sigma * self.sigma / 2.0).exp()
    }

    /// Samples one value.
    pub fn sample(&self, rng: &mut SimRng) -> f64 {
        (self.mu + self.sigma * rng.next_gaussian()).exp()
    }
}

/// Exponential distribution with the given rate (events per unit time).
#[derive(Debug, Clone, Copy)]
pub struct Exponential {
    rate: f64,
}

impl Exponential {
    /// Creates an exponential distribution with rate `lambda`.
    ///
    /// # Panics
    ///
    /// Panics if `lambda` is not strictly positive and finite.
    pub fn new(lambda: f64) -> Self {
        assert!(lambda.is_finite() && lambda > 0.0);
        Exponential { rate: lambda }
    }

    /// Samples one inter-arrival value.
    pub fn sample(&self, rng: &mut SimRng) -> f64 {
        -rng.next_f64_open().ln() / self.rate
    }
}

/// Empirical distribution: uniform resampling from observed values.
///
/// The SpecWeb96-style subtrace experiment (§5.5) picks entries uniformly
/// at random from a fixed log; this sampler is that mechanism.
#[derive(Debug, Clone)]
pub struct Empirical<T: Clone> {
    values: Vec<T>,
}

impl<T: Clone> Empirical<T> {
    /// Wraps a non-empty set of observations.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty.
    pub fn new(values: Vec<T>) -> Self {
        assert!(!values.is_empty(), "empirical distribution needs data");
        Empirical { values }
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the sampler is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Samples one observation uniformly.
    pub fn sample(&self, rng: &mut SimRng) -> T {
        self.values[rng.next_index(self.values.len())].clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_pmf_sums_to_one() {
        let z = Zipf::new(50, 0.8);
        let total: f64 = (1..=50).map(|k| z.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zipf_rank_one_most_popular() {
        let z = Zipf::new(1000, 1.0);
        let mut rng = SimRng::new(11);
        let mut counts = vec![0u32; 1000];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng) - 1] += 1;
        }
        assert!(counts[0] > counts[9]);
        assert!(counts[9] > counts[99]);
        // Rank 1 of Zipf(1.0, n=1000) has mass 1/H_1000 ~= 0.1336.
        let p1 = counts[0] as f64 / 100_000.0;
        assert!((p1 - 0.1336).abs() < 0.01, "p1 {p1}");
    }

    #[test]
    fn zipf_uniform_when_s_zero() {
        let z = Zipf::new(10, 0.0);
        for k in 1..=10 {
            assert!((z.pmf(k) - 0.1).abs() < 1e-12);
        }
    }

    #[test]
    fn lognormal_matches_moments() {
        let d = LogNormal::from_mean_median(50.0, 10.0);
        let mut rng = SimRng::new(12);
        let n = 200_000;
        let mean = (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 50.0).abs() / 50.0 < 0.05, "mean {mean}");
        assert!((d.mean() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn exponential_mean_is_inverse_rate() {
        let d = Exponential::new(4.0);
        let mut rng = SimRng::new(13);
        let n = 100_000;
        let mean = (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 0.25).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn empirical_resamples_observed_values() {
        let d = Empirical::new(vec![3, 5, 9]);
        let mut rng = SimRng::new(14);
        for _ in 0..1000 {
            let v = d.sample(&mut rng);
            assert!(v == 3 || v == 5 || v == 9);
        }
    }
}

//! FIFO single-server resources (CPU, disk).
//!
//! The experiment drivers model the server CPU and the disk as FIFO
//! queues: a job arriving at `now` with service demand `d` completes at
//! `max(now, next_free) + d`. This is the standard event-calculus shortcut
//! for M/G/1-style stations and is exact for FIFO service.

use crate::time::SimTime;

/// A FIFO single-server queueing resource.
///
/// Tracks when the server next becomes free, total busy time, and job
/// counts, so drivers can report utilization.
///
/// # Examples
///
/// ```
/// use iolite_sim::{FifoResource, SimTime};
///
/// let mut cpu = FifoResource::new("cpu");
/// let done1 = cpu.submit(SimTime::ZERO, SimTime::from_us(10.0));
/// let done2 = cpu.submit(SimTime::ZERO, SimTime::from_us(5.0));
/// assert_eq!(done1, SimTime::from_us(10.0));
/// // The second job queues behind the first.
/// assert_eq!(done2, SimTime::from_us(15.0));
/// ```
#[derive(Debug, Clone)]
pub struct FifoResource {
    name: &'static str,
    next_free: SimTime,
    busy: SimTime,
    jobs: u64,
}

impl FifoResource {
    /// Creates an idle resource.
    pub fn new(name: &'static str) -> Self {
        FifoResource {
            name,
            next_free: SimTime::ZERO,
            busy: SimTime::ZERO,
            jobs: 0,
        }
    }

    /// Submits a job at `now` with the given service demand and returns
    /// its completion time.
    pub fn submit(&mut self, now: SimTime, service: SimTime) -> SimTime {
        let start = self.next_free.max(now);
        let done = start + service;
        self.next_free = done;
        self.busy += service;
        self.jobs += 1;
        done
    }

    /// Time at which the server next becomes free.
    pub fn next_free(&self) -> SimTime {
        self.next_free
    }

    /// Queueing delay a job submitted at `now` would experience.
    pub fn backlog(&self, now: SimTime) -> SimTime {
        self.next_free.saturating_sub(now)
    }

    /// Total service time accumulated.
    pub fn busy_time(&self) -> SimTime {
        self.busy
    }

    /// Number of jobs served.
    pub fn jobs(&self) -> u64 {
        self.jobs
    }

    /// Utilization over `[0, horizon]`.
    pub fn utilization(&self, horizon: SimTime) -> f64 {
        if horizon == SimTime::ZERO {
            0.0
        } else {
            (self.busy.as_secs() / horizon.as_secs()).min(1.0)
        }
    }

    /// The resource's diagnostic name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Resets the resource to idle, clearing statistics.
    pub fn reset(&mut self) {
        self.next_free = SimTime::ZERO;
        self.busy = SimTime::ZERO;
        self.jobs = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_server_starts_immediately() {
        let mut r = FifoResource::new("t");
        let done = r.submit(SimTime::from_us(100.0), SimTime::from_us(10.0));
        assert_eq!(done, SimTime::from_us(110.0));
    }

    #[test]
    fn jobs_queue_fifo() {
        let mut r = FifoResource::new("t");
        let a = r.submit(SimTime::ZERO, SimTime::from_us(10.0));
        let b = r.submit(SimTime::from_us(2.0), SimTime::from_us(10.0));
        let c = r.submit(SimTime::from_us(25.0), SimTime::from_us(10.0));
        assert_eq!(a, SimTime::from_us(10.0));
        assert_eq!(b, SimTime::from_us(20.0));
        // Arrives after the queue drained: starts at its arrival.
        assert_eq!(c, SimTime::from_us(35.0));
    }

    #[test]
    fn utilization_accounts_busy_time() {
        let mut r = FifoResource::new("t");
        r.submit(SimTime::ZERO, SimTime::from_us(30.0));
        r.submit(SimTime::ZERO, SimTime::from_us(20.0));
        assert_eq!(r.busy_time(), SimTime::from_us(50.0));
        assert!((r.utilization(SimTime::from_us(100.0)) - 0.5).abs() < 1e-12);
        assert_eq!(r.jobs(), 2);
    }

    #[test]
    fn backlog_reports_wait() {
        let mut r = FifoResource::new("t");
        r.submit(SimTime::ZERO, SimTime::from_us(10.0));
        assert_eq!(r.backlog(SimTime::from_us(4.0)), SimTime::from_us(6.0));
        assert_eq!(r.backlog(SimTime::from_us(40.0)), SimTime::ZERO);
    }

    #[test]
    fn reset_clears_state() {
        let mut r = FifoResource::new("t");
        r.submit(SimTime::ZERO, SimTime::from_us(10.0));
        r.reset();
        assert_eq!(r.jobs(), 0);
        assert_eq!(r.busy_time(), SimTime::ZERO);
        assert_eq!(r.next_free(), SimTime::ZERO);
    }
}

#![warn(missing_docs)]
//! Deterministic discrete-event simulation substrate for the IO-Lite
//! reproduction.
//!
//! The paper evaluates IO-Lite on a real testbed (333MHz Pentium II,
//! 128MB RAM, 5×100Mb/s Fast Ethernet). This crate provides the *time*
//! substrate that stands in for that hardware: a simulated clock, an event
//! queue with deterministic tie-breaking, FIFO resources (CPU, disk),
//! shared network links, a seedable pseudo-random number generator, the
//! distributions used for workload synthesis, and statistics collectors.
//!
//! Everything in this crate is deterministic: running the same experiment
//! with the same seed produces identical results on every platform. That
//! property is load-bearing for the reproduction — EXPERIMENTS.md records
//! numbers that `cargo bench` must regenerate.

pub mod dist;
pub mod engine;
pub mod link;
pub mod resource;
pub mod rng;
pub mod stats;
pub mod time;

pub use dist::{Empirical, Exponential, LogNormal, Zipf};
pub use engine::EventQueue;
pub use link::{Link, LinkSet};
pub use resource::FifoResource;
pub use rng::SimRng;
pub use stats::{Counter, RateMeter, Summary};
pub use time::SimTime;

//! `repro`: regenerates every figure of the IO-Lite paper's evaluation.
//!
//! Usage: `repro [all|fig3|fig4|fig5|fig6|fig7|fig8|fig9|fig10|fig11|fig12|fig13|check] [--fast]`
//!
//! Output is designed to sit next to the paper: each figure prints the
//! measured series plus the claims the paper makes about it, so
//! EXPERIMENTS.md can record paper-vs-measured directly.

use iolite_bench::figures::{self, Scale};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let fast = args.iter().any(|a| a == "--fast");
    let scale = if fast { Scale::fast() } else { Scale::full() };
    let what = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .map(String::as_str)
        .unwrap_or("all")
        .to_string();

    let mut failed = false;
    match what.as_str() {
        "fig3" => fig3(scale),
        "fig4" => fig4(scale),
        "fig5" => fig5(scale),
        "fig6" => fig6(scale),
        "fig7" => fig7(),
        "fig8" => fig8(scale),
        "fig9" => fig9(),
        "fig10" => fig10(scale),
        "fig11" => fig11(scale),
        "fig12" => fig12(scale),
        "fig13" => fig13(scale),
        "check" => failed = !check(scale),
        "all" => {
            fig3(scale);
            fig4(scale);
            fig5(scale);
            fig6(scale);
            fig7();
            fig8(scale);
            fig9();
            fig10(scale);
            fig11(scale);
            fig12(scale);
            fig13(scale);
            failed = !check(scale);
        }
        other => {
            eprintln!("unknown figure: {other}");
            std::process::exit(2);
        }
    }
    if failed {
        std::process::exit(1);
    }
}

fn header(title: &str, claims: &[&str]) {
    println!();
    println!("==== {title} ====");
    for c in claims {
        println!("  paper: {c}");
    }
}

fn bandwidth_table(rows: &[figures::BandwidthRow], x_label: &str, cols: &[&str]) {
    print!("{x_label:>10}");
    for c in cols {
        print!(" {c:>12}");
    }
    println!();
    for row in rows {
        print!("{:>10}", row.x);
        for v in &row.mbps {
            print!(" {:>10.1}Mb", v);
        }
        println!();
    }
}

fn size_table(rows: &[figures::BandwidthRow], cols: &[&str]) {
    print!("{:>10}", "size");
    for c in cols {
        print!(" {c:>12}");
    }
    println!();
    for row in rows {
        let label = if row.x >= 1024 {
            format!("{}KB", row.x >> 10)
        } else {
            format!("{}B", row.x)
        };
        print!("{label:>10}");
        for v in &row.mbps {
            print!(" {:>10.1}Mb", v);
        }
        println!();
    }
}

const SERVER_COLS: [&str; 3] = ["Flash-Lite", "Flash", "Apache"];

fn fig3(scale: Scale) {
    header(
        "Figure 3: HTTP single-file test (non-persistent, 40 clients)",
        &[
            "Flash-Lite +38-43% over Flash for >=50KB; +73-94% over Apache",
            "Flash and Flash-Lite roughly equal at <=5KB",
            "Flash up to +71% over Apache around 20KB",
        ],
    );
    size_table(&figures::fig03(scale), &SERVER_COLS);
}

fn fig4(scale: Scale) {
    header(
        "Figure 4: persistent-connection single-file test",
        &[
            "small-file rates rise strongly for Flash/Flash-Lite, little for Apache",
            "Flash-Lite within 10% of network saturation at 17KB; saturates >=30KB",
            "Flash-Lite up to +43% over Flash for >=20KB",
        ],
    );
    size_table(&figures::fig04(scale), &SERVER_COLS);
}

fn fig5(scale: Scale) {
    header(
        "Figure 5: HTTP/FastCGI (non-persistent)",
        &[
            "Flash/Apache CGI bandwidth roughly half their static rates",
            "Flash-Lite CGI approaches 87% of its static speed",
            "Flash-Lite CGI beats Flash static",
        ],
    );
    size_table(&figures::fig05(scale), &SERVER_COLS);
}

fn fig6(scale: Scale) {
    header(
        "Figure 6: persistent-HTTP/FastCGI",
        &["Flash/Apache gain little from persistence (pipe-bound); Flash-Lite gains"],
    );
    size_table(&figures::fig06(scale), &SERVER_COLS);
}

fn fig7() {
    header(
        "Figure 7: trace characteristics (synthesized to published stats)",
        &[
            "ECE: 783529 reqs, 10195 files, 523MB; top 5000 files = 95% reqs / 39% bytes",
            "CS: 3746842 reqs, 26948 files, 933MB",
            "MERGED: 2290909 reqs, 37703 files, 1418MB",
        ],
    );
    for row in figures::fig07() {
        trace_row(&row);
    }
}

fn fig9() {
    header(
        "Figure 9: 150MB MERGED subtrace",
        &["28403 reqs, 5459 files, 150MB; top 1000 files = 74% reqs / 20% bytes"],
    );
    trace_row(&figures::fig09());
}

fn trace_row(row: &figures::TraceRow) {
    println!(
        "{:>14}: {} files, {} paper-log requests, {}MB, mean request {:.1}KB",
        row.name, row.files, row.requests, row.total_mb, row.mean_request_kb
    );
    for (files, reqs, bytes) in &row.anchors {
        println!(
            "              top {files:>6} files: {:>5.1}% of requests, {:>5.1}% of bytes",
            100.0 * reqs,
            100.0 * bytes
        );
    }
}

fn fig8(scale: Scale) {
    header(
        "Figure 8: overall trace performance (64 clients, shared-log replay)",
        &[
            "Flash-Lite significantly outperforms Flash and Apache on ECE and CS",
            "MERGED: poor locality, all servers disk-bound and close",
        ],
    );
    println!(
        "{:>10} {:>12} {:>12} {:>12}   (hit rates)",
        "trace", SERVER_COLS[0], SERVER_COLS[1], SERVER_COLS[2]
    );
    for row in figures::fig08(scale) {
        println!(
            "{:>10} {:>10.1}Mb {:>10.1}Mb {:>10.1}Mb   ({:.2}/{:.2}/{:.2})",
            row.name,
            row.mbps[0],
            row.mbps[1],
            row.mbps[2],
            row.hit_rates[0],
            row.hit_rates[1],
            row.hit_rates[2]
        );
    }
}

fn fig10(scale: Scale) {
    header(
        "Figure 10: MERGED subtrace, bandwidth vs data-set size (64 clients)",
        &[
            "in-memory region: Flash-Lite +34-50% over Flash",
            "disk-bound region: +44-67% (GDS cache policy)",
            "Flash +65-88% over Apache in-memory, +71-110% disk-bound",
        ],
    );
    bandwidth_table(&figures::fig10(scale), "dataset MB", &SERVER_COLS);
}

fn fig11(scale: Scale) {
    header(
        "Figure 11: optimization contributions (Fig. 10 workload)",
        &[
            "copy elimination alone: 21-33% (FL-noCksum vs Flash, in-memory)",
            "checksum caching: +10-15% on top",
            "GDS vs LRU: +17-28% on disk-heavy workloads",
        ],
    );
    bandwidth_table(
        &figures::fig11(scale),
        "dataset MB",
        &figures::fig11_variants(),
    );
}

fn fig12(scale: Scale) {
    header(
        "Figure 12: throughput vs WAN delay (120MB data set, clients 64->900)",
        &[
            "Flash drops ~33%, Apache ~50% as delay grows (socket copies squeeze cache)",
            "Flash-Lite unaffected (references, not copies)",
        ],
    );
    bandwidth_table(&figures::fig12(scale), "RTT ms", &SERVER_COLS);
}

fn fig13(scale: Scale) {
    header(
        "Figure 13: application runtimes (POSIX vs IO-Lite)",
        &["wc -37%, permute -33%, grep -48%, gcc ~0%"],
    );
    println!(
        "{:>10} {:>12} {:>12} {:>10} {:>10}",
        "app", "POSIX", "IO-Lite", "measured", "paper"
    );
    for row in figures::fig13(scale) {
        println!(
            "{:>10} {:>10.1}ms {:>10.1}ms {:>9.1}% {:>9.1}%",
            row.name,
            row.posix_ms,
            row.iolite_ms,
            row.reduction_pct(),
            row.paper_reduction_pct
        );
    }
}

/// Asserts the direction of every headline claim; prints PASS/FAIL.
fn check(scale: Scale) -> bool {
    let mut ok = true;
    let mut claim = |name: &str, pass: bool, detail: String| {
        println!(
            "  [{}] {name}: {detail}",
            if pass { "PASS" } else { "FAIL" }
        );
        ok &= pass;
    };

    println!();
    println!("==== claim checks ====");

    let f3 = figures::fig03(scale);
    let at = |rows: &[figures::BandwidthRow], bytes: u64| -> Vec<f64> {
        rows.iter().find(|r| r.x == bytes).unwrap().mbps.clone()
    };
    let big = at(&f3, 200 << 10);
    claim(
        "fig3 ordering at 200KB",
        big[0] > big[1] && big[1] > big[2],
        format!(
            "FL {:.0} > Flash {:.0} > Apache {:.0}",
            big[0], big[1], big[2]
        ),
    );
    let gain = big[0] / big[1] - 1.0;
    claim(
        "fig3 FL/Flash gain at 200KB in 25-60% band (paper 38-43%)",
        (0.25..=0.60).contains(&gain),
        format!("{:.0}%", gain * 100.0),
    );
    let small = at(&f3, 2 << 10);
    let small_gap = (small[0] / small[1] - 1.0).abs();
    claim(
        "fig3 convergence at 2KB (within 15%)",
        small_gap < 0.15,
        format!("gap {:.0}%", small_gap * 100.0),
    );

    let f4 = figures::fig04(scale);
    let cap = 420.0;
    let fl30 = at(&f4, 30 << 10)[0];
    claim(
        "fig4 FL near saturation at 30KB persistent",
        fl30 > 0.9 * cap,
        format!("{fl30:.0} of {cap:.0} Mb/s"),
    );
    let np10 = at(&f3, 10 << 10)[0];
    let p10 = at(&f4, 10 << 10)[0];
    claim(
        "fig4 persistence helps small files",
        p10 > 1.5 * np10,
        format!("{np10:.0} -> {p10:.0} Mb/s at 10KB"),
    );

    let f5 = figures::fig05(scale);
    let cgi100 = at(&f5, 100 << 10);
    let static100 = at(&f3, 100 << 10);
    let flash_ratio = cgi100[1] / static100[1];
    claim(
        "fig5 Flash CGI roughly halves",
        (0.3..=0.7).contains(&flash_ratio),
        format!("ratio {flash_ratio:.2}"),
    );
    let fl_ratio = cgi100[0] / static100[0];
    claim(
        "fig5 Flash-Lite CGI keeps most of its static speed",
        fl_ratio > 0.75,
        format!("ratio {fl_ratio:.2}"),
    );
    claim(
        "fig5 FL CGI beats Flash static",
        cgi100[0] > static100[1],
        format!("{:.0} vs {:.0} Mb/s", cgi100[0], static100[1]),
    );

    let f10 = figures::fig10(scale);
    let inmem = &f10[0].mbps;
    let disk = &f10.last().unwrap().mbps;
    claim(
        "fig10 FL wins in-memory",
        inmem[0] > inmem[1] && inmem[1] > inmem[2],
        format!("{:.0} > {:.0} > {:.0}", inmem[0], inmem[1], inmem[2]),
    );
    claim(
        "fig10 FL wins disk-bound",
        disk[0] > disk[1],
        format!("{:.0} > {:.0}", disk[0], disk[1]),
    );

    let f11 = figures::fig11(scale);
    let disk11 = &f11.last().unwrap().mbps;
    claim(
        "fig11 GDS beats LRU disk-bound",
        disk11[0] > disk11[1],
        format!("GDS {:.0} vs LRU {:.0}", disk11[0], disk11[1]),
    );
    let inmem11 = &f11[0].mbps;
    claim(
        "fig11 checksum cache contributes in-memory",
        inmem11[0] > inmem11[2],
        format!("with {:.0} vs without {:.0}", inmem11[0], inmem11[2]),
    );
    claim(
        "fig11 copy elimination alone beats Flash",
        inmem11[2] > inmem11[4],
        format!("FL-noCksum {:.0} vs Flash {:.0}", inmem11[2], inmem11[4]),
    );

    let f12 = figures::fig12(scale);
    let lan = &f12[0].mbps;
    let wan = &f12.last().unwrap().mbps;
    let fl_drop = 1.0 - wan[0] / lan[0];
    let flash_drop = 1.0 - wan[1] / lan[1];
    let apache_drop = 1.0 - wan[2] / lan[2];
    claim(
        "fig12 Flash drops with delay (paper ~33%)",
        (0.15..=0.70).contains(&flash_drop),
        format!("{:.0}%", flash_drop * 100.0),
    );
    claim(
        "fig12 Apache drops heavily (paper ~50%)",
        (0.30..=0.75).contains(&apache_drop),
        format!("{:.0}%", apache_drop * 100.0),
    );
    claim(
        "fig12 Flash-Lite resilient (paper: flat)",
        fl_drop < 0.12 && fl_drop < flash_drop - 0.10,
        format!("{:.0}%", fl_drop * 100.0),
    );

    let f13 = figures::fig13(scale);
    for row in &f13 {
        let measured = row.reduction_pct();
        let pass = if row.paper_reduction_pct == 0.0 {
            measured.abs() < 5.0
        } else {
            (measured - row.paper_reduction_pct).abs() < 12.0
        };
        claim(
            &format!(
                "fig13 {} reduction (paper {:.0}%)",
                row.name, row.paper_reduction_pct
            ),
            pass,
            format!("{measured:.1}%"),
        );
    }

    println!();
    println!(
        "overall: {}",
        if ok {
            "ALL CLAIMS PASS"
        } else {
            "SOME CLAIMS FAILED"
        }
    );
    ok
}

//! Figure-regeneration harness: one function per figure of the paper's
//! evaluation (§5), shared by the `repro` binary and the Criterion
//! benches.
//!
//! Every function returns printable rows so EXPERIMENTS.md can record
//! paper-vs-measured numbers; `Scale` trades run length for fidelity
//! (benches use `Scale::fast()`, the `repro` binary defaults to
//! `Scale::full()`).

pub mod figures;

pub use figures::Scale;

/// Formats one bandwidth row.
pub fn fmt_mbps(v: f64) -> String {
    format!("{v:7.1}")
}

//! One regeneration function per figure (paper §5).

use iolite_apps::{run_cat_grep, run_permute_wc, run_wc, ApiMode, AppCosts, CompilePipeline};
use iolite_core::{CostModel, Kernel};
use iolite_fs::Policy;
use iolite_http::{Experiment, ExperimentConfig, ServerKind, WorkloadKind};
use iolite_trace::{cdf::cdf_series, TraceSpec, Workload};

/// Run-length control: `full` approximates the paper's run lengths;
/// `fast` is for benches and smoke tests.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Measured requests per data point.
    pub requests: u64,
    /// Warm-up requests per data point.
    pub warmup: u64,
    /// Requests for trace-replay points.
    pub trace_requests: u64,
    /// Warm-up requests for trace points. The paper's trace runs last
    /// one hour; compulsory (first-touch) misses are a negligible
    /// fraction there, so shorter replays must warm the cache first or
    /// cold misses drown the steady-state signal.
    pub trace_warmup: u64,
    /// Permute word count (10 in the paper).
    pub permute_n: usize,
}

impl Scale {
    /// Paper-approximating run lengths.
    pub fn full() -> Self {
        Scale {
            requests: 3000,
            warmup: 300,
            trace_requests: 50_000,
            trace_warmup: 25_000,
            permute_n: 10,
        }
    }

    /// Short runs for benches.
    pub fn fast() -> Self {
        Scale {
            requests: 600,
            warmup: 100,
            trace_requests: 6_000,
            trace_warmup: 3_000,
            permute_n: 7,
        }
    }
}

/// The document sizes of Figs. 3–6 ("the data points below 20KB are
/// 500 bytes, 1KB, 2KB, 3KB, 5KB, 7KB, 10KB, and 15KB").
pub fn figure_sizes() -> Vec<u64> {
    vec![
        500,
        1 << 10,
        2 << 10,
        3 << 10,
        5 << 10,
        7 << 10,
        10 << 10,
        15 << 10,
        20 << 10,
        30 << 10,
        50 << 10,
        75 << 10,
        100 << 10,
        150 << 10,
        200 << 10,
    ]
}

/// The three servers in figure order.
pub fn servers() -> [ServerKind; 3] {
    [ServerKind::FlashLite, ServerKind::Flash, ServerKind::Apache]
}

/// One bandwidth row: size plus Mb/s per server.
#[derive(Debug, Clone)]
pub struct BandwidthRow {
    /// Document size (bytes) or sweep parameter.
    pub x: u64,
    /// Mb/s for [Flash-Lite, Flash, Apache] (or variant list).
    pub mbps: Vec<f64>,
}

fn single_file_sweep(scale: Scale, persistent: bool, cgi: bool) -> Vec<BandwidthRow> {
    figure_sizes()
        .into_iter()
        .map(|bytes| {
            let mbps = servers()
                .iter()
                .map(|&server| {
                    let workload = if cgi {
                        WorkloadKind::Cgi { bytes }
                    } else {
                        WorkloadKind::SingleFile { bytes }
                    };
                    let mut cfg = ExperimentConfig::new(server, workload);
                    cfg.requests = scale.requests;
                    cfg.warmup = scale.warmup;
                    cfg.persistent = persistent;
                    Experiment::run_config(cfg).mbit_s
                })
                .collect();
            BandwidthRow { x: bytes, mbps }
        })
        .collect()
}

/// Fig. 3: HTTP single-file test, non-persistent connections.
pub fn fig03(scale: Scale) -> Vec<BandwidthRow> {
    single_file_sweep(scale, false, false)
}

/// Fig. 4: persistent (HTTP/1.1) single-file test.
pub fn fig04(scale: Scale) -> Vec<BandwidthRow> {
    single_file_sweep(scale, true, false)
}

/// Fig. 5: HTTP/FastCGI, non-persistent.
pub fn fig05(scale: Scale) -> Vec<BandwidthRow> {
    single_file_sweep(scale, false, true)
}

/// Fig. 6: persistent-HTTP/FastCGI.
pub fn fig06(scale: Scale) -> Vec<BandwidthRow> {
    single_file_sweep(scale, true, true)
}

/// A Fig. 7 / Fig. 9 row: trace statistics plus CDF anchors.
#[derive(Debug, Clone)]
pub struct TraceRow {
    /// Trace name.
    pub name: String,
    /// Files, requests, total MB, mean request KB (achieved).
    pub files: usize,
    /// Requests in the original log.
    pub requests: u64,
    /// Total data size, MB.
    pub total_mb: u64,
    /// Achieved mean request size, KB.
    pub mean_request_kb: f64,
    /// CDF: (files, cum-requests, cum-bytes) anchor points.
    pub anchors: Vec<(usize, f64, f64)>,
}

/// Fig. 7: characteristics of the ECE / CS / MERGED traces.
pub fn fig07() -> Vec<TraceRow> {
    [TraceSpec::ece(), TraceSpec::cs(), TraceSpec::merged()]
        .into_iter()
        .map(|spec| trace_row(&spec))
        .collect()
}

/// Fig. 9: the 150MB MERGED subtrace.
pub fn fig09() -> TraceRow {
    trace_row(&TraceSpec::subtrace_150mb())
}

fn trace_row(spec: &TraceSpec) -> TraceRow {
    let w = Workload::synthesize(spec, 42);
    let series = cdf_series(&w, 100);
    let anchor_files: Vec<usize> = vec![w.len() / 10, w.len() / 4, w.len() / 2, w.len()];
    let mut anchors = Vec::new();
    for af in anchor_files {
        if let Some(p) = series.iter().find(|p| p.files >= af) {
            anchors.push((p.files, p.cum_requests, p.cum_bytes));
        }
    }
    TraceRow {
        name: spec.name.to_string(),
        files: w.len(),
        requests: spec.requests,
        total_mb: w.total_bytes() >> 20,
        mean_request_kb: w.mean_request_bytes() / 1024.0,
        anchors,
    }
}

/// A Fig. 8 row: one trace, Mb/s per server.
#[derive(Debug, Clone)]
pub struct TraceBandwidthRow {
    /// Trace name.
    pub name: String,
    /// Mb/s for [Flash-Lite, Flash, Apache].
    pub mbps: Vec<f64>,
    /// Hit rate per server (diagnostics).
    pub hit_rates: Vec<f64>,
}

/// Fig. 8: overall trace performance, 64 clients, shared-log replay.
pub fn fig08(scale: Scale) -> Vec<TraceBandwidthRow> {
    [TraceSpec::ece(), TraceSpec::cs(), TraceSpec::merged()]
        .into_iter()
        .map(|spec| {
            let w = Workload::synthesize(&spec, 42);
            let mut mbps = Vec::new();
            let mut hit_rates = Vec::new();
            for server in servers() {
                let mut cfg = ExperimentConfig::new(
                    server,
                    WorkloadKind::TraceReplay {
                        workload: w.clone(),
                        log_len: scale.trace_requests + scale.trace_warmup,
                    },
                );
                cfg.clients = 64;
                cfg.requests = scale.trace_requests;
                cfg.warmup = scale.trace_warmup;
                let r = Experiment::run_config(cfg);
                mbps.push(r.mbit_s);
                hit_rates.push(r.hit_rate);
            }
            TraceBandwidthRow {
                name: spec.name.to_string(),
                mbps,
                hit_rates,
            }
        })
        .collect()
}

/// The Fig. 10 / Fig. 11 data-set sizes (MB).
pub fn dataset_sizes_mb() -> Vec<u64> {
    vec![30, 60, 90, 120, 150]
}

/// Fig. 10: MERGED subtrace, bandwidth vs data-set size.
pub fn fig10(scale: Scale) -> Vec<BandwidthRow> {
    let base = Workload::synthesize(&TraceSpec::subtrace_150mb(), 42);
    dataset_sizes_mb()
        .into_iter()
        .map(|mb| {
            let w = if mb >= 150 {
                base.clone()
            } else {
                base.stratified_subset(mb << 20)
            };
            let mbps = servers()
                .iter()
                .map(|&server| {
                    let mut cfg = ExperimentConfig::new(
                        server,
                        WorkloadKind::TraceSampled {
                            workload: w.clone(),
                        },
                    );
                    cfg.clients = 64;
                    cfg.requests = scale.trace_requests;
                    cfg.warmup = scale.trace_warmup;
                    Experiment::run_config(cfg).mbit_s
                })
                .collect();
            BandwidthRow { x: mb, mbps }
        })
        .collect()
}

/// Fig. 11 variant labels, in column order.
pub fn fig11_variants() -> [&'static str; 5] {
    [
        "Flash-Lite",
        "FL-LRU",
        "FL-noCksum",
        "FL-LRU-noCksum",
        "Flash",
    ]
}

/// Fig. 11: optimization contributions — Flash-Lite with/without the
/// checksum cache and with GDS vs LRU, against Flash.
pub fn fig11(scale: Scale) -> Vec<BandwidthRow> {
    let base = Workload::synthesize(&TraceSpec::subtrace_150mb(), 42);
    dataset_sizes_mb()
        .into_iter()
        .map(|mb| {
            let w = if mb >= 150 {
                base.clone()
            } else {
                base.stratified_subset(mb << 20)
            };
            let variants: Vec<(ServerKind, Option<Policy>, bool)> = vec![
                (ServerKind::FlashLite, None, true),
                (ServerKind::FlashLite, Some(Policy::Lru), true),
                (ServerKind::FlashLite, None, false),
                (ServerKind::FlashLite, Some(Policy::Lru), false),
                (ServerKind::Flash, None, true),
            ];
            let mbps = variants
                .into_iter()
                .map(|(server, policy, cksum)| {
                    let mut cfg = ExperimentConfig::new(
                        server,
                        WorkloadKind::TraceSampled {
                            workload: w.clone(),
                        },
                    );
                    cfg.clients = 64;
                    cfg.requests = scale.trace_requests;
                    cfg.warmup = scale.trace_warmup;
                    cfg.policy = policy;
                    cfg.checksum_cache = cksum;
                    Experiment::run_config(cfg).mbit_s
                })
                .collect();
            BandwidthRow { x: mb, mbps }
        })
        .collect()
}

/// The Fig. 12 delay points: (RTT ms, client count), scaling clients
/// linearly from 64 (LAN) to 900 (150ms) as §5.7 describes.
pub fn wan_points() -> Vec<(f64, usize)> {
    [0.0f64, 5.0, 50.0, 100.0, 150.0]
        .into_iter()
        .map(|d| (d, (64.0 + (900.0 - 64.0) * d / 150.0).round() as usize))
        .collect()
}

/// Fig. 12: throughput vs WAN delay, 120MB data set.
pub fn fig12(scale: Scale) -> Vec<BandwidthRow> {
    let base = Workload::synthesize(&TraceSpec::subtrace_150mb(), 42);
    let w = base.stratified_subset(120 << 20);
    wan_points()
        .into_iter()
        .map(|(rtt_ms, clients)| {
            let mbps = servers()
                .iter()
                .map(|&server| {
                    let mut cfg = ExperimentConfig::new(
                        server,
                        WorkloadKind::TraceSampled {
                            workload: w.clone(),
                        },
                    );
                    cfg.clients = clients;
                    cfg.requests = scale.trace_requests;
                    cfg.warmup = scale.trace_warmup;
                    cfg.rtt_ms = rtt_ms;
                    Experiment::run_config(cfg).mbit_s
                })
                .collect();
            BandwidthRow {
                x: rtt_ms as u64,
                mbps,
            }
        })
        .collect()
}

/// A Fig. 13 row: application runtimes under both APIs.
#[derive(Debug, Clone)]
pub struct AppRow {
    /// Application name.
    pub name: &'static str,
    /// Conventional (POSIX) runtime, ms.
    pub posix_ms: f64,
    /// IO-Lite runtime, ms.
    pub iolite_ms: f64,
    /// The paper's reported reduction, percent.
    pub paper_reduction_pct: f64,
}

impl AppRow {
    /// Measured runtime reduction, percent.
    pub fn reduction_pct(&self) -> f64 {
        100.0 * (1.0 - self.iolite_ms / self.posix_ms)
    }
}

/// Fig. 13: wc, cat|grep, permute|wc, gcc runtimes.
pub fn fig13(scale: Scale) -> Vec<AppRow> {
    let costs = AppCosts::calibrated();
    let mut rows = Vec::new();

    // wc on a cached 1.75MB file.
    let mut k = Kernel::new(CostModel::pentium_ii_333());
    let pid = k.spawn("wc");
    let f = k.create_synthetic_file("/big.txt", 1_750_000, 1);
    run_wc(&mut k, pid, f, ApiMode::Posix, &costs);
    k.reset_clock();
    let (_, posix) = run_wc(&mut k, pid, f, ApiMode::Posix, &costs);
    k.reset_clock();
    let (_, iolite) = run_wc(&mut k, pid, f, ApiMode::IoLite, &costs);
    rows.push(AppRow {
        name: "wc",
        posix_ms: posix.as_ms(),
        iolite_ms: iolite.as_ms(),
        paper_reduction_pct: 37.0,
    });

    // permute | wc.
    let mut k = Kernel::new(CostModel::pentium_ii_333());
    let p = k.spawn("permute");
    let wcp = k.spawn("wc");
    let (_, posix) = run_permute_wc(&mut k, p, wcp, scale.permute_n, ApiMode::Posix, &costs);
    k.reset_clock();
    let (_, iolite) = run_permute_wc(&mut k, p, wcp, scale.permute_n, ApiMode::IoLite, &costs);
    rows.push(AppRow {
        name: "permute",
        posix_ms: posix.as_ms(),
        iolite_ms: iolite.as_ms(),
        paper_reduction_pct: 33.0,
    });

    // cat | grep on 1.75MB.
    let mut k = Kernel::new(CostModel::pentium_ii_333());
    let cat = k.spawn("cat");
    let grep = k.spawn("grep");
    let mut text = Vec::new();
    while text.len() < 1_750_000 {
        text.extend_from_slice(b"ordinary prose line with nothing special here\n");
        text.extend_from_slice(b"a line that mentions iolite for the pattern\n");
    }
    let f = k.create_file("/prose.txt", &text);
    run_cat_grep(&mut k, cat, grep, f, b"iolite", ApiMode::Posix, &costs);
    k.reset_clock();
    let (_, posix) = run_cat_grep(&mut k, cat, grep, f, b"iolite", ApiMode::Posix, &costs);
    k.reset_clock();
    let (_, iolite) = run_cat_grep(&mut k, cat, grep, f, b"iolite", ApiMode::IoLite, &costs);
    rows.push(AppRow {
        name: "grep",
        posix_ms: posix.as_ms(),
        iolite_ms: iolite.as_ms(),
        paper_reduction_pct: 48.0,
    });

    // gcc chain on a 167KB source set.
    let mut k = Kernel::new(CostModel::pentium_ii_333());
    let pipeline = CompilePipeline::new(&mut k);
    let src = k.create_synthetic_file("/src.c", 167_000, 3);
    pipeline.compile(&mut k, src, ApiMode::Posix, &costs);
    k.reset_clock();
    let (_, posix) = pipeline.compile(&mut k, src, ApiMode::Posix, &costs);
    k.reset_clock();
    let (_, iolite) = pipeline.compile(&mut k, src, ApiMode::IoLite, &costs);
    rows.push(AppRow {
        name: "gcc",
        posix_ms: posix.as_ms(),
        iolite_ms: iolite.as_ms(),
        paper_reduction_pct: 0.0,
    });

    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_sizes_match_paper_list() {
        let sizes = figure_sizes();
        assert_eq!(sizes[0], 500);
        assert!(sizes.contains(&(15 << 10)));
        assert_eq!(*sizes.last().unwrap(), 200 << 10);
    }

    #[test]
    fn wan_points_scale_linearly() {
        let pts = wan_points();
        assert_eq!(pts[0], (0.0, 64));
        assert_eq!(pts.last().unwrap().1, 900);
    }

    #[test]
    fn fig03_fast_has_correct_shape() {
        let rows = fig03(Scale::fast());
        assert_eq!(rows.len(), figure_sizes().len());
        let last = rows.last().unwrap();
        // Flash-Lite > Flash > Apache at 200KB.
        assert!(last.mbps[0] > last.mbps[1]);
        assert!(last.mbps[1] > last.mbps[2]);
    }

    #[test]
    fn fig13_fast_directions() {
        let rows = fig13(Scale::fast());
        let by_name = |n: &str| rows.iter().find(|r| r.name == n).unwrap().reduction_pct();
        assert!(by_name("wc") > 20.0);
        assert!(by_name("grep") > 30.0);
        assert!(by_name("permute") > 20.0);
        assert!(by_name("gcc").abs() < 5.0);
    }
}

//! Ablation benchmarks for the design decisions DESIGN.md §6 calls out:
//! pool recycling, early demultiplexing, in-place mutation, and chunk
//! size. Each prints the *simulated* mechanism delta once, then
//! benchmarks the host-side cost of the mechanism.

use criterion::{criterion_group, criterion_main, Criterion};
use iolite_buf::{Acl, Aggregate, BufferPool, DomainId, PoolId};
use iolite_fs::{CacheKey, FileId, Policy, UnifiedCache};
use iolite_net::{FilterRule, RxPath, SegmentHeader, StreamId};
use iolite_sim::SimRng;
use iolite_trace::{TraceSpec, Workload};
use iolite_vm::IoLiteWindow;

/// Short measurement windows: benches document magnitudes, not publishable
/// microbenchmark precision.
fn quick<M: criterion::measurement::Measurement>(
    mut g: criterion::BenchmarkGroup<'_, M>,
) -> criterion::BenchmarkGroup<'_, M> {
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    g
}

/// Policy ablation: request hit rates of LRU / GDS / GDSF on the
/// 150MB subtrace at half-size cache (the §3.7 customization hook).
fn policy_hit_rates() -> Vec<(Policy, f64)> {
    let w = Workload::synthesize(&TraceSpec::subtrace_150mb(), 42);
    let pool = BufferPool::new(PoolId(9), Acl::kernel_only(), 64 * 1024);
    [Policy::Lru, Policy::Gds, Policy::Gdsf]
        .into_iter()
        .map(|policy| {
            let mut cache = UnifiedCache::new(policy, 75 << 20);
            let mut rng = SimRng::new(7);
            let mut hits = 0u64;
            let n = 60_000u64;
            for _ in 0..n {
                let idx = w.sample_request(&mut rng);
                let key = CacheKey::whole(FileId(idx as u64));
                if cache.lookup(&key).is_none() {
                    // Miss: "fetch" and insert a placeholder of the
                    // file's real size (content is irrelevant to policy
                    // behaviour, and this keeps the sweep fast).
                    let size = w.files()[idx].bytes;
                    cache.insert(key, placeholder(&pool, size));
                } else {
                    hits += 1;
                }
            }
            (policy, hits as f64 / n as f64)
        })
        .collect()
}

/// A sparse stand-in aggregate of the right accounted length.
fn placeholder(pool: &BufferPool, size: u64) -> Aggregate {
    // One real slice, repeated by reference to reach `size` cheaply.
    let base = Aggregate::from_bytes(pool, &[0u8; 4096]);
    let slice = base.slice_at(0).clone();
    let mut agg = Aggregate::empty();
    let mut remaining = size;
    while remaining > 0 {
        let take = remaining.min(4096) as usize;
        agg.append_slice(slice.sub(0, take).expect("in range"));
        remaining -= take as u64;
    }
    agg
}

/// Recycling ablation: map-operation counts for a pipe-style stream of
/// 64KB messages with and without chunk recycling.
fn recycling_delta() -> (u64, u64) {
    let run = |hold: bool| -> u64 {
        let pool = BufferPool::new(PoolId(1), Acl::with_domain(DomainId(1)), 64 * 1024);
        let mut window = IoLiteWindow::new(64 * 1024);
        let acl = pool.acl();
        let mut keep = Vec::new();
        for _ in 0..100 {
            let msg = Aggregate::from_bytes(&pool, &[0u8; 64 * 1024]);
            let chunks: Vec<_> = msg.slices().map(|s| s.id().chunk).collect();
            window.transfer(&chunks, DomainId(1), &acl).unwrap();
            if hold {
                // Prevent recycling: every message keeps its buffers
                // (sequential-sharing systems without recycling).
                keep.push(msg);
            }
        }
        window.stats().pages_mapped
    };
    (run(false), run(true))
}

/// Demux ablation: copied bytes with and without early demultiplexing.
fn demux_delta() -> (u64, u64) {
    let run = |enabled: bool| -> u64 {
        let mut rx = RxPath::new();
        rx.filter_mut().set_enabled(enabled);
        rx.filter_mut().add_rule(FilterRule {
            dst_port: 80,
            src_ip: None,
            src_port: None,
            stream: StreamId(1),
        });
        rx.bind_stream(
            StreamId(1),
            BufferPool::new(PoolId(2), Acl::with_domain(DomainId(1)), 64 * 1024),
        );
        let header = SegmentHeader {
            src_ip: 1,
            dst_ip: 2,
            src_port: 1234,
            dst_port: 80,
            seq: 0,
            ack: 0,
            flags: 0x18,
            payload_len: 1460,
        };
        let payload = [0u8; 1460];
        for _ in 0..100 {
            rx.receive(&header, &payload);
        }
        rx.stats().bytes_copied
    };
    (run(true), run(false))
}

/// In-place ablation: mutating a 64KB buffer via the §3.1-footnote
/// optimization vs the chaining path.
fn bench_inplace(c: &mut Criterion) {
    let pool = BufferPool::new(PoolId(3), Acl::kernel_only(), 64 * 1024);
    let mut g = quick(c.benchmark_group("ablate_inplace"));
    g.bench_function("unshared_in_place", |b| {
        b.iter(|| {
            let agg = Aggregate::from_bytes(&pool, &[0u8; 4096]);
            let mut s = agg.slice_at(0).clone();
            drop(agg);
            s.try_mutate_in_place(|bytes| bytes[100] = 7).unwrap();
            s
        })
    });
    g.bench_function("shared_chain", |b| {
        let agg = Aggregate::from_bytes(&pool, &[0u8; 4096]);
        b.iter(|| agg.replace(&pool, 100, 1, &[7]).unwrap())
    });
    g.finish();
}

/// Chunk-size ablation: first-transfer mapping cost vs ACL granularity.
fn chunk_size_sweep() -> Vec<(usize, u64)> {
    [16 * 1024, 64 * 1024, 256 * 1024]
        .into_iter()
        .map(|chunk| {
            let pool = BufferPool::new(PoolId(4), Acl::with_domain(DomainId(1)), chunk);
            let mut window = IoLiteWindow::new(chunk);
            let acl = pool.acl();
            // Transfer 1MB of fresh data.
            let mut held = Vec::new();
            for _ in 0..16 {
                let msg = Aggregate::from_bytes(&pool, &vec![0u8; 64 * 1024]);
                let chunks: Vec<_> = msg.slices().map(|s| s.id().chunk).collect();
                window.transfer(&chunks, DomainId(1), &acl).unwrap();
                held.push(msg);
            }
            (chunk, window.stats().chunk_maps)
        })
        .collect()
}

fn print_deltas_once() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    if std::env::args().any(|a| a == "--test") {
        return;
    }
    ONCE.call_once(|| {
        let (with, without) = recycling_delta();
        eprintln!(
            "--- ablation: pool recycling: pages mapped for 100x64KB stream: \
             with recycling {with}, without {without} (the §3.2 claim)"
        );
        let (with, without) = demux_delta();
        eprintln!(
            "--- ablation: early demux: payload bytes copied for 100 packets: \
             with demux {with}, without {without} (the §3.6 claim)"
        );
        for (chunk, maps) in chunk_size_sweep() {
            eprintln!(
                "--- ablation: chunk size {:>6}KB -> {maps} map ops per fresh MB \
                 (§4.5 granularity trade-off)",
                chunk >> 10
            );
        }
        for (policy, hit) in policy_hit_rates() {
            eprintln!(
                "--- ablation: cache policy {policy:?}: request hit rate {:.3} \
                 (150MB subtrace, 75MB cache; the §3.7 customization hook)",
                hit
            );
        }
    });
}

fn bench_recycling(c: &mut Criterion) {
    print_deltas_once();
    let mut g = quick(c.benchmark_group("ablate_recycling"));
    g.bench_function("delta", |b| b.iter(recycling_delta));
    g.finish();
}

fn bench_demux(c: &mut Criterion) {
    let mut g = quick(c.benchmark_group("ablate_demux"));
    g.bench_function("delta", |b| b.iter(demux_delta));
    g.finish();
}

criterion_group!(benches, bench_recycling, bench_demux, bench_inplace);
criterion_main!(benches);

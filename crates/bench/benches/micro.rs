//! Microbenchmarks of the core IO-Lite mechanisms (host performance of
//! this implementation, not simulated time).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use iolite_buf::{Acl, Aggregate, BufferPool, DomainId, PoolId};
use iolite_fs::{CacheKey, FileId, Policy, UnifiedCache};
use iolite_ipc::{Pipe, PipeMode};
use iolite_net::{internet_checksum, ChecksumCache};
use iolite_vm::MmapView;

/// Short measurement windows: benches document magnitudes, not publishable
/// microbenchmark precision.
fn quick<M: criterion::measurement::Measurement>(
    mut g: criterion::BenchmarkGroup<'_, M>,
) -> criterion::BenchmarkGroup<'_, M> {
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    g
}

fn pool() -> BufferPool {
    BufferPool::new(PoolId(1), Acl::with_domain(DomainId(1)), 64 * 1024)
}

fn bench_aggregates(c: &mut Criterion) {
    let p = pool();
    let data = vec![0xA5u8; 64 * 1024];
    let mut g = quick(c.benchmark_group("aggregate"));
    g.throughput(Throughput::Bytes(64 * 1024));
    g.bench_function("from_bytes_64k", |b| {
        b.iter(|| Aggregate::from_bytes(&p, &data))
    });
    let agg = Aggregate::from_bytes(&p, &data);
    g.bench_function("clone_share", |b| b.iter(|| agg.clone()));
    g.bench_function("split_at_mid", |b| b.iter(|| agg.split_at(32 * 1024)));
    g.bench_function("concat", |b| b.iter(|| agg.concat(&agg)));
    g.bench_function("range_4k", |b| b.iter(|| agg.range(1000, 4096).unwrap()));
    g.bench_function("replace_16b", |b| {
        b.iter(|| agg.replace(&p, 100, 16, b"0123456789abcdef").unwrap())
    });
    g.finish();
}

/// A 256-slice aggregate (64KB in 256-byte buffers): the fragmentation
/// degree §3.8's indexing-cost analysis worries about. These benches
/// make the aggregate core's structural costs visible so index/cursor
/// changes are measurable (before/after tables live in EXPERIMENTS.md).
fn frag_aggregate() -> (BufferPool, Aggregate) {
    let tiny = BufferPool::new(PoolId(3), Acl::with_domain(DomainId(1)), 256);
    let data = vec![0x3Cu8; 64 * 1024];
    let agg = Aggregate::from_bytes(&tiny, &data);
    assert_eq!(agg.num_slices(), 256);
    (tiny, agg)
}

fn bench_fragmented(c: &mut Criterion) {
    let (_tiny, agg) = frag_aggregate();
    let big = pool();
    let mut g = quick(c.benchmark_group("aggregate_frag256"));
    g.bench_function("advance_sweep_256x256", |b| {
        // Consume the whole aggregate front-to-back in 256-byte steps.
        b.iter_batched(
            || agg.clone(),
            |mut a| {
                while !a.is_empty() {
                    a.advance(256);
                }
                a
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("byte_at_sweep_1k", |b| {
        // 1024 random-ish probes across the full range.
        b.iter(|| {
            let mut acc = 0u64;
            let mut i = 7u64;
            for _ in 0..1024 {
                i = (i * 31 + 17) % agg.len();
                acc += agg.byte_at(i).unwrap() as u64;
            }
            acc
        })
    });
    g.bench_function("copy_to_4k_mid", |b| {
        let mut dst = vec![0u8; 4096];
        b.iter(|| agg.copy_to(30 * 1024, &mut dst))
    });
    g.bench_function("copy_to_256b_deep", |b| {
        // Small window deep in the aggregate: slice location, not the
        // memcpy, is the dominant cost being measured.
        let mut dst = vec![0u8; 256];
        b.iter(|| agg.copy_to(60 * 1024, &mut dst))
    });
    g.bench_function("range_4k_mid", |b| b.iter(|| agg.range(30 * 1024, 4096)));
    g.bench_function("truncate_tail", |b| {
        b.iter_batched(
            || agg.clone(),
            |mut a| {
                a.truncate(63 * 1024);
                a
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("prepend_64_slices", |b| {
        let single = Aggregate::from_bytes(&big, &[0u8; 64]);
        b.iter_batched(
            || agg.clone(),
            |mut a| {
                for _ in 0..64 {
                    a.prepend(&single);
                }
                a
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("pack_64k", |b| b.iter(|| agg.pack(&big)));
    g.bench_function("iter_bytes_scan_64k", |b| {
        b.iter(|| agg.iter_bytes().fold(0u64, |a, x| a + x as u64))
    });
    g.bench_function("cursor_scan_64k", |b| {
        // The vectored fast path: run-wise scan via the zero-alloc cursor.
        b.iter(|| {
            let mut cur = agg.cursor();
            let mut acc = 0u64;
            while let Some(chunk) = cur.next_chunk() {
                acc += chunk.iter().map(|&x| x as u64).sum::<u64>();
            }
            acc
        })
    });
    g.finish();
}

fn bench_pool(c: &mut Criterion) {
    let mut g = quick(c.benchmark_group("pool"));
    g.bench_function("alloc_freeze_recycle_4k", |b| {
        let p = pool();
        b.iter(|| {
            let mut m = p.alloc(4096).unwrap();
            m.put(&[0u8; 4096]);
            m.freeze()
        })
    });
    g.bench_function("alloc_fresh_chunks", |b| {
        // Hold every allocation: no recycling possible.
        b.iter_batched(
            pool,
            |p| {
                let mut keep = Vec::new();
                for _ in 0..16 {
                    let mut m = p.alloc(64 * 1024).unwrap();
                    m.put(&[0u8; 64 * 1024]);
                    keep.push(m.freeze());
                }
                keep
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_checksum(c: &mut Criterion) {
    let p = pool();
    let agg = Aggregate::from_bytes(&p, &vec![0x5Au8; 64 * 1024]);
    let mut g = quick(c.benchmark_group("checksum"));
    g.throughput(Throughput::Bytes(64 * 1024));
    g.bench_function("compute_64k", |b| b.iter(|| internet_checksum(&agg)));
    g.bench_function("cached_64k", |b| {
        let mut cache = ChecksumCache::new(1024);
        cache.sum_for(agg.slice_at(0));
        b.iter(|| cache.sum_for(agg.slice_at(0)))
    });
    g.finish();
}

fn bench_unified_cache(c: &mut Criterion) {
    let p = pool();
    let mut g = quick(c.benchmark_group("unified_cache"));
    for policy in [Policy::Lru, Policy::Gds] {
        let mut cache = UnifiedCache::new(policy, 64 << 20);
        for i in 0..1000 {
            cache.insert(
                CacheKey::whole(FileId(i)),
                Aggregate::from_bytes(&p, &vec![0u8; 4096]),
            );
        }
        g.bench_function(format!("lookup_hit_{policy:?}"), |b| {
            let mut i = 0u64;
            b.iter(|| {
                i = (i + 7) % 1000;
                cache.lookup(&CacheKey::whole(FileId(i)))
            })
        });
    }
    // Steady-state insert+evict churn.
    g.bench_function("insert_evict_churn", |b| {
        let mut cache = UnifiedCache::new(Policy::Gds, 1 << 20);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            cache.insert(
                CacheKey::whole(FileId(i)),
                Aggregate::from_bytes(&p, &vec![0u8; 16 * 1024]),
            )
        })
    });
    g.finish();
}

fn bench_pipes(c: &mut Criterion) {
    let p = pool();
    let msg = Aggregate::from_bytes(&p, &vec![0u8; 32 * 1024]);
    let mut g = quick(c.benchmark_group("pipe"));
    g.throughput(Throughput::Bytes(32 * 1024));
    g.bench_function("copy_mode_roundtrip_32k", |b| {
        let mut pipe = Pipe::new(PipeMode::Copy, 64 * 1024);
        b.iter(|| {
            pipe.write(&msg);
            pipe.read(u64::MAX)
        })
    });
    g.bench_function("zero_copy_roundtrip_32k", |b| {
        let mut pipe = Pipe::new(PipeMode::ZeroCopy, 64 * 1024);
        b.iter(|| {
            pipe.write(&msg);
            pipe.read(u64::MAX)
        })
    });
    g.finish();
}

fn bench_mmap(c: &mut Criterion) {
    let p = pool();
    let tiny = BufferPool::new(PoolId(2), Acl::kernel_only(), 1000);
    let data = vec![1u8; 64 * 1024];
    let contiguous = Aggregate::from_bytes_aligned(&p, &data, 4096);
    let fragmented = Aggregate::from_bytes(&tiny, &data);
    let mut g = quick(c.benchmark_group("mmap"));
    g.throughput(Throughput::Bytes(64 * 1024));
    g.bench_function("direct_read_64k", |b| {
        b.iter_batched(
            || MmapView::new(contiguous.clone()),
            |mut v| v.read_all(),
            BatchSize::SmallInput,
        )
    });
    g.bench_function("fragmented_read_64k", |b| {
        b.iter_batched(
            || MmapView::new(fragmented.clone()),
            |mut v| v.read_all(),
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_aggregates,
    bench_fragmented,
    bench_pool,
    bench_checksum,
    bench_unified_cache,
    bench_pipes,
    bench_mmap
);
criterion_main!(benches);

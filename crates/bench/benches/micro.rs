//! Microbenchmarks of the core IO-Lite mechanisms (host performance of
//! this implementation, not simulated time).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use iolite_buf::{Acl, Aggregate, BufferPool, DomainId, PoolId};
use iolite_fs::{CacheKey, FileId, Policy, UnifiedCache};
use iolite_ipc::{Pipe, PipeMode};
use iolite_net::{internet_checksum, ChecksumCache};
use iolite_vm::MmapView;

/// Short measurement windows: benches document magnitudes, not publishable
/// microbenchmark precision.
fn quick<M: criterion::measurement::Measurement>(
    mut g: criterion::BenchmarkGroup<'_, M>,
) -> criterion::BenchmarkGroup<'_, M> {
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    g
}

fn pool() -> BufferPool {
    BufferPool::new(PoolId(1), Acl::with_domain(DomainId(1)), 64 * 1024)
}

fn bench_aggregates(c: &mut Criterion) {
    let p = pool();
    let data = vec![0xA5u8; 64 * 1024];
    let mut g = quick(c.benchmark_group("aggregate"));
    g.throughput(Throughput::Bytes(64 * 1024));
    g.bench_function("from_bytes_64k", |b| {
        b.iter(|| Aggregate::from_bytes(&p, &data))
    });
    let agg = Aggregate::from_bytes(&p, &data);
    g.bench_function("clone_share", |b| b.iter(|| agg.clone()));
    g.bench_function("split_at_mid", |b| b.iter(|| agg.split_at(32 * 1024)));
    g.bench_function("concat", |b| b.iter(|| agg.concat(&agg)));
    g.bench_function("range_4k", |b| b.iter(|| agg.range(1000, 4096).unwrap()));
    g.bench_function("replace_16b", |b| {
        b.iter(|| agg.replace(&p, 100, 16, b"0123456789abcdef").unwrap())
    });
    g.finish();
}

fn bench_pool(c: &mut Criterion) {
    let mut g = quick(c.benchmark_group("pool"));
    g.bench_function("alloc_freeze_recycle_4k", |b| {
        let p = pool();
        b.iter(|| {
            let mut m = p.alloc(4096).unwrap();
            m.put(&[0u8; 4096]);
            m.freeze()
        })
    });
    g.bench_function("alloc_fresh_chunks", |b| {
        // Hold every allocation: no recycling possible.
        b.iter_batched(
            pool,
            |p| {
                let mut keep = Vec::new();
                for _ in 0..16 {
                    let mut m = p.alloc(64 * 1024).unwrap();
                    m.put(&[0u8; 64 * 1024]);
                    keep.push(m.freeze());
                }
                keep
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_checksum(c: &mut Criterion) {
    let p = pool();
    let agg = Aggregate::from_bytes(&p, &vec![0x5Au8; 64 * 1024]);
    let mut g = quick(c.benchmark_group("checksum"));
    g.throughput(Throughput::Bytes(64 * 1024));
    g.bench_function("compute_64k", |b| b.iter(|| internet_checksum(&agg)));
    g.bench_function("cached_64k", |b| {
        let mut cache = ChecksumCache::new(1024);
        cache.sum_for(&agg.slices()[0]);
        b.iter(|| cache.sum_for(&agg.slices()[0]))
    });
    g.finish();
}

fn bench_unified_cache(c: &mut Criterion) {
    let p = pool();
    let mut g = quick(c.benchmark_group("unified_cache"));
    for policy in [Policy::Lru, Policy::Gds] {
        let mut cache = UnifiedCache::new(policy, 64 << 20);
        for i in 0..1000 {
            cache.insert(
                CacheKey::whole(FileId(i)),
                Aggregate::from_bytes(&p, &vec![0u8; 4096]),
            );
        }
        g.bench_function(format!("lookup_hit_{policy:?}"), |b| {
            let mut i = 0u64;
            b.iter(|| {
                i = (i + 7) % 1000;
                cache.lookup(&CacheKey::whole(FileId(i)))
            })
        });
    }
    // Steady-state insert+evict churn.
    g.bench_function("insert_evict_churn", |b| {
        let mut cache = UnifiedCache::new(Policy::Gds, 1 << 20);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            cache.insert(
                CacheKey::whole(FileId(i)),
                Aggregate::from_bytes(&p, &vec![0u8; 16 * 1024]),
            )
        })
    });
    g.finish();
}

fn bench_pipes(c: &mut Criterion) {
    let p = pool();
    let msg = Aggregate::from_bytes(&p, &vec![0u8; 32 * 1024]);
    let mut g = quick(c.benchmark_group("pipe"));
    g.throughput(Throughput::Bytes(32 * 1024));
    g.bench_function("copy_mode_roundtrip_32k", |b| {
        let mut pipe = Pipe::new(PipeMode::Copy, 64 * 1024);
        b.iter(|| {
            pipe.write(&msg);
            pipe.read(u64::MAX)
        })
    });
    g.bench_function("zero_copy_roundtrip_32k", |b| {
        let mut pipe = Pipe::new(PipeMode::ZeroCopy, 64 * 1024);
        b.iter(|| {
            pipe.write(&msg);
            pipe.read(u64::MAX)
        })
    });
    g.finish();
}

fn bench_mmap(c: &mut Criterion) {
    let p = pool();
    let tiny = BufferPool::new(PoolId(2), Acl::kernel_only(), 1000);
    let data = vec![1u8; 64 * 1024];
    let contiguous = Aggregate::from_bytes_aligned(&p, &data, 4096);
    let fragmented = Aggregate::from_bytes(&tiny, &data);
    let mut g = quick(c.benchmark_group("mmap"));
    g.throughput(Throughput::Bytes(64 * 1024));
    g.bench_function("direct_read_64k", |b| {
        b.iter_batched(
            || MmapView::new(contiguous.clone()),
            |mut v| v.read_all(),
            BatchSize::SmallInput,
        )
    });
    g.bench_function("fragmented_read_64k", |b| {
        b.iter_batched(
            || MmapView::new(fragmented.clone()),
            |mut v| v.read_all(),
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_aggregates,
    bench_pool,
    bench_checksum,
    bench_unified_cache,
    bench_pipes,
    bench_mmap
);
criterion_main!(benches);

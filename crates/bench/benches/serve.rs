//! Server hot-path benchmarks: one request end-to-end through the real
//! kernel structures, per server model.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use iolite_core::{CostModel, Kernel};
use iolite_fs::{CacheKey, Policy};
use iolite_http::{server::serve_static, CgiProcess, ServerKind};
use iolite_ipc::PipeMode;
use iolite_net::{DEFAULT_MSS, DEFAULT_TSS};

/// Short measurement windows: benches document magnitudes, not publishable
/// microbenchmark precision.
fn quick<M: criterion::measurement::Measurement>(
    mut g: criterion::BenchmarkGroup<'_, M>,
) -> criterion::BenchmarkGroup<'_, M> {
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    g
}

fn bench_serve_static(c: &mut Criterion) {
    for (size, label) in [(20u64 << 10, "20k"), (200u64 << 10, "200k")] {
        let mut g = quick(c.benchmark_group(format!("serve_static_{label}")));
        g.throughput(Throughput::Bytes(size));
        for kind in [ServerKind::FlashLite, ServerKind::Flash, ServerKind::Apache] {
            let policy = if kind == ServerKind::FlashLite {
                Policy::Gds
            } else {
                Policy::Lru
            };
            let mut kernel = Kernel::with_policy(CostModel::pentium_ii_333(), policy);
            let pid = kernel.spawn("server");
            let file = kernel.create_synthetic_file("/doc", size, 1);
            let file_fd = kernel.open_file(pid, file);
            let sock = kernel.socket_create(pid, kind.buffer_mode(), DEFAULT_MSS, DEFAULT_TSS);
            // Warm everything.
            serve_static(&mut kernel, kind, sock, pid, file_fd);
            kernel.cache_unpin(CacheKey::whole(file));
            g.bench_function(kind.label(), |b| {
                b.iter(|| {
                    let rc = serve_static(&mut kernel, kind, sock, pid, file_fd);
                    if let Some(k) = rc.pin_key {
                        kernel.cache_unpin(k);
                    }
                    rc.response_bytes
                })
            });
        }
        g.finish();
    }
}

fn bench_serve_cgi(c: &mut Criterion) {
    let mut g = quick(c.benchmark_group("serve_cgi_100k"));
    g.throughput(Throughput::Bytes(100 << 10));
    for (kind, mode) in [
        (ServerKind::FlashLite, PipeMode::ZeroCopy),
        (ServerKind::Flash, PipeMode::Copy),
    ] {
        let mut kernel = Kernel::new(CostModel::pentium_ii_333());
        let server = kernel.spawn("server");
        let mut cgi = CgiProcess::new(&mut kernel, server, 100 << 10, mode);
        let sock = kernel.socket_create(server, kind.buffer_mode(), DEFAULT_MSS, DEFAULT_TSS);
        cgi.serve(&mut kernel, kind, sock, server).expect("healthy pipe");
        g.bench_function(kind.label(), |b| {
            b.iter(|| {
                cgi.serve(&mut kernel, kind, sock, server)
                    .expect("healthy pipe")
                    .response_bytes
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_serve_static, bench_serve_cgi);
criterion_main!(benches);

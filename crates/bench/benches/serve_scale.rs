//! `serve_scale`: reference-aware caching at production scale (§3.7,
//! §3.9), and event-loop throughput vs concurrency (PR 5).
//!
//! Four scenarios guard the cache layer's and event loop's scaling
//! behaviour:
//!
//! * `request_churn_10k` — the real HTTP driver path (`serve_static`)
//!   over a 10k-file Zipf corpus with thousands of concurrent
//!   connections holding pins mid-transmission, while the memory
//!   accountant wobbles the cache budget under load. A deterministic
//!   stats pass prints eviction counts and hit rates (recorded in
//!   EXPERIMENTS.md) before the timed run.
//! * `evict_pinned_prefix` — adversarial eviction cost vs entry count:
//!   every entry except the best victim is pinned, so a scan-based
//!   `evict_one` walks the whole pinned prefix while an indexed one
//!   stays O(log n).
//! * `cksum_cold_pressure` — a hot slice's checksum must survive an
//!   overflow of cold slices through the bounded checksum cache.
//! * `event_loop_concurrency` — throughput vs concurrency through the
//!   readiness-driven server: 256/1024/2048 nonblocking connections
//!   multiplexed per `iol_poll` tick over a Zipf corpus, zero busy-spin
//!   (asserted). A deterministic stats pass prints requests per
//!   simulated CPU second at each level (recorded in EXPERIMENTS.md).
//! * `sharded_sweep` (PR 7) — shared-nothing thread-per-core scaling:
//!   the same total connection load over 1/2/4/8 shards, each shard
//!   per-core provisioned with the PR 3 single-kernel cache budget,
//!   with requests-per-cpu-second measured on the parallel makespan
//!   (max per-shard simulated CPU). An extra fixed-total-RAM row
//!   (the single-kernel budget *split* across 2 shards) quantifies
//!   the replication tax when adding shards cannot add memory. A
//!   deterministic stats pass prints the scaling table and writes
//!   `BENCH_serve_scale.json` at the repo root (throughput, hit rate,
//!   evictions, fabric traffic per shard count).
//!   `IOLITE_SWEEP_CONNS` overrides the sweep's connection count for
//!   local experiments.

use std::collections::VecDeque;
use std::io::Write as _;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use iolite_buf::{Acl, Aggregate, BufferPool, PoolId, Slice};
use iolite_core::{CostModel, Fd, Kernel};
use iolite_fs::{CacheKey, CacheOwnership, FileId, Policy, UnifiedCache, WritebackConfig};
use iolite_http::{run_sharded, server::serve_static, ServerKind, ShardedConfig, ShardedReport};
use iolite_net::{ChecksumCache, DEFAULT_MSS, DEFAULT_TSS};
use iolite_sim::SimRng;
use iolite_trace::{TraceSpec, Workload};
use iolite_vm::MemAccount;

/// Short measurement windows: benches document magnitudes, not publishable
/// microbenchmark precision.
fn quick<M: criterion::measurement::Measurement>(
    mut g: criterion::BenchmarkGroup<'_, M>,
) -> criterion::BenchmarkGroup<'_, M> {
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(2));
    g
}

/// The 10k-file corpus: Zipf popularity, log-normal sizes, three times
/// the cache budget so eviction never stops.
fn scale_spec() -> TraceSpec {
    TraceSpec {
        name: "SCALE-10K",
        files: 10_000,
        total_bytes: 192 << 20,
        requests: 1_000_000,
        mean_request_bytes: 16 << 10,
        zipf_s: 1.0,
        size_sigma: 1.4,
    }
}

/// Number of simulated concurrent connections (and the depth of the
/// in-flight pin queue: every response in flight pins its cache entry
/// until the transmission drains, §3.7).
const CONNS: usize = 2048;
const PIN_DEPTH: usize = 4096;
/// Budget wobble: extra socket-copy reservation toggled under load.
const WOBBLE_BYTES: u64 = 24 << 20;
/// Length of the deterministic stats pass.
const STATS_REQUESTS: u64 = 30_000;

struct ScaleRig {
    kernel: Kernel,
    pid: iolite_core::Pid,
    /// The server's open-file set (one descriptor per corpus file).
    files: Vec<Fd>,
    /// Kernel socket descriptors, one per simulated connection.
    socks: Vec<Fd>,
    workload: Workload,
    rng: SimRng,
    inflight: VecDeque<CacheKey>,
    served: u64,
    wobbled: bool,
}

impl ScaleRig {
    fn new() -> Self {
        let workload = Workload::synthesize(&scale_spec(), 7);
        let mut cost = CostModel::pentium_ii_333();
        cost.ram_bytes = 64 << 20;
        let mut kernel = Kernel::with_policy(cost, Policy::Gds);
        // Undersize the checksum cache relative to the corpus's slice
        // population so its replacement policy is actually exercised
        // (the kernel default never overflows in a 30k-request pass).
        kernel.cksum = ChecksumCache::new(8192);
        kernel
            .physmem
            .reserve(MemAccount::Server, cost.server_reserve_bytes);
        let pid = kernel.spawn("server");
        let files: Vec<Fd> = workload
            .files()
            .iter()
            .map(|f| {
                let id = kernel.create_synthetic_file(&f.name, f.bytes, 7 ^ f.bytes);
                kernel.open_file(pid, id)
            })
            .collect();
        let socks = (0..CONNS)
            .map(|_| {
                kernel.socket_create(pid, ServerKind::FlashLite.buffer_mode(), DEFAULT_MSS, DEFAULT_TSS)
            })
            .collect();
        ScaleRig {
            kernel,
            pid,
            files,
            socks,
            workload,
            rng: SimRng::new(11),
            inflight: VecDeque::with_capacity(PIN_DEPTH + 1),
            served: 0,
            wobbled: false,
        }
    }

    /// Serves one Zipf-sampled request with pin churn and periodic
    /// budget wobble; returns response bytes.
    fn step(&mut self) -> u64 {
        let idx = self.workload.sample_request(&mut self.rng);
        let file = self.files[idx];
        let sock = self.socks[self.served as usize % CONNS];
        let rc = serve_static(&mut self.kernel, ServerKind::FlashLite, sock, self.pid, file);
        if let Some(key) = rc.pin_key {
            self.inflight.push_back(key);
        }
        // The oldest in-flight transmission drains: release its pin.
        if self.inflight.len() > PIN_DEPTH {
            let key = self.inflight.pop_front().expect("non-empty");
            self.kernel.cache_unpin(key);
        }
        self.served += 1;
        // Budget shrink under load: competing socket-buffer memory
        // appears and disappears; rebalance drives set_budget.
        if self.served.is_multiple_of(512) {
            if self.wobbled {
                self.kernel
                    .physmem
                    .release(MemAccount::SocketCopies, WOBBLE_BYTES);
            } else {
                self.kernel
                    .physmem
                    .reserve(MemAccount::SocketCopies, WOBBLE_BYTES);
            }
            self.wobbled = !self.wobbled;
            self.kernel.rebalance_cache();
        }
        rc.response_bytes
    }
}

fn bench_request_churn(c: &mut Criterion) {
    let mut rig = ScaleRig::new();
    // Deterministic stats pass: same numbers on every run, recorded in
    // EXPERIMENTS.md as the before/after comparison.
    for _ in 0..STATS_REQUESTS {
        rig.step();
    }
    let cs = rig.kernel.cache.stats();
    let ck = rig.kernel.cksum.stats();
    println!(
        "serve_scale stats after {STATS_REQUESTS} requests: \
         file cache {} entries, {} evictions ({} pinned), hit rate {:.3}; \
         checksum cache hit rate {:.3} ({} hits / {} misses)",
        rig.kernel.cache.len(),
        cs.evictions,
        cs.pinned_evictions,
        cs.hits as f64 / (cs.hits + cs.misses).max(1) as f64,
        ck.hits as f64 / (ck.hits + ck.misses).max(1) as f64,
        ck.hits,
        ck.misses,
    );
    let mut g = quick(c.benchmark_group("serve_scale"));
    g.throughput(Throughput::Elements(1));
    g.bench_function("request_churn_10k", |b| b.iter(|| rig.step()));
    g.finish();
}

fn bench_evict_pinned_prefix(c: &mut Criterion) {
    let mut g = quick(c.benchmark_group("cache_evict"));
    g.throughput(Throughput::Elements(1));
    for n in [1_000u64, 10_000, 50_000] {
        let pool = BufferPool::new(PoolId(1), Acl::kernel_only(), 64 * 1024);
        let mut cache = UnifiedCache::new(Policy::Lru, u64::MAX);
        for i in 0..n {
            let key = CacheKey::whole(FileId(i));
            cache.insert(key, Aggregate::from_bytes(&pool, &[0xEE; 256]));
            // Pin everything except the newest entry: the network holds
            // the rest mid-transmission, so the victim search must pass
            // over the whole pinned population.
            if i < n - 1 {
                cache.pin(&key);
            }
        }
        g.bench_function(format!("pinned_prefix_{n}"), |b| {
            b.iter(|| {
                // Steady state: evict the single unpinned entry and
                // reinsert it as the newest unpinned one.
                let (key, agg) = cache.evict_one().expect("victim");
                cache.insert(key, agg);
                key
            })
        });
    }
    g.finish();
}

fn bench_cksum_cold_pressure(c: &mut Criterion) {
    let pool = BufferPool::new(PoolId(2), Acl::kernel_only(), 64 * 1024);
    let hot_agg = Aggregate::from_bytes(&pool, &[0x5A; 1000]);
    let hot = hot_agg.slice_at(0).clone();
    let cold: Vec<Slice> = (0..8192)
        .map(|i| {
            Aggregate::from_bytes(&pool, &[(i % 251) as u8; 32])
                .slice_at(0)
                .clone()
        })
        .collect();
    // Deterministic stats pass: a hot document is retransmitted every 8
    // requests while 8192 one-off cold slices stream through a
    // 1024-entry cache.
    let mut cache = ChecksumCache::new(1024);
    cache.sum_for(&hot);
    let mut hot_hits = 0u64;
    let mut hot_accesses = 0u64;
    for (i, s) in cold.iter().enumerate() {
        cache.sum_for(s);
        if i % 8 == 0 {
            let computed_before = cache.stats().bytes_computed;
            cache.sum_for(&hot);
            hot_accesses += 1;
            if cache.stats().bytes_computed == computed_before {
                hot_hits += 1;
            }
        }
    }
    let st = cache.stats();
    println!(
        "cksum_cold_pressure stats: hot slice hit {hot_hits}/{hot_accesses}, \
         overall hit rate {:.3} ({} hits / {} misses)",
        st.hits as f64 / (st.hits + st.misses).max(1) as f64,
        st.hits,
        st.misses,
    );
    let mut g = quick(c.benchmark_group("cksum_cold_pressure"));
    g.throughput(Throughput::Elements(9));
    let mut i = 0usize;
    g.bench_function("sum_under_pressure", |b| {
        b.iter(|| {
            // 8 cold slices + 1 hot retransmission per iteration.
            let mut acc = 0u16;
            for _ in 0..8 {
                acc ^= cache.sum_for(&cold[i % cold.len()]).sum;
                i += 1;
            }
            acc ^ cache.sum_for(&hot).sum
        })
    });
    g.finish();
}

/// The event-loop corpus: smaller than SCALE-10K (each timed iteration
/// rebuilds the rig), still Zipf-skewed with a multi-chunk tail.
fn loop_spec() -> TraceSpec {
    TraceSpec {
        name: "LOOP-512",
        files: 512,
        total_bytes: 24 << 20,
        requests: 100_000,
        mean_request_bytes: 16 << 10,
        zipf_s: 1.0,
        size_sigma: 1.2,
    }
}

/// Builds and runs one event-loop pass: `conns` closed-loop clients,
/// `reqs_per_conn` Zipf-sampled requests each.
fn run_event_loop(conns: usize, reqs_per_conn: usize) -> iolite_http::LoopReport {
    let workload = Workload::synthesize(&loop_spec(), 13);
    let mut kernel = Kernel::with_policy(CostModel::pentium_ii_333(), Policy::Gds);
    let pid = kernel.spawn("server");
    let paths: Vec<String> = workload
        .files()
        .iter()
        .map(|f| {
            kernel.create_synthetic_file(&f.name, f.bytes, 13 ^ f.bytes);
            f.name.clone()
        })
        .collect();
    let mut rng = SimRng::new(conns as u64);
    let scripts: Vec<Vec<String>> = (0..conns)
        .map(|_| {
            (0..reqs_per_conn)
                .map(|_| paths[workload.sample_request(&mut rng)].clone())
                .collect()
        })
        .collect();
    let cfg = iolite_http::EventLoopConfig {
        drain_per_tick: 16 * 1024,
        ..iolite_http::EventLoopConfig::default()
    };
    let (report, _) = iolite_http::EventLoopServer::new(kernel, pid, scripts, None, cfg).run();
    assert_eq!(report.stats.blocked_io, 0, "readiness-driven: no spin");
    report
}

fn bench_event_loop_concurrency(c: &mut Criterion) {
    // Deterministic stats pass: throughput vs concurrency, printed for
    // the EXPERIMENTS.md table.
    for conns in [256usize, 1024, 2048] {
        let report = run_event_loop(conns, 2);
        let s = report.stats;
        println!(
            "event_loop stats at {conns} conns: {} requests in {} ticks \
             ({} polls, {} fds scanned), max in-flight {}, hit rate {:.3}, \
             sim CPU {:.1}ms => {:.0} requests/cpu-sec",
            s.completed,
            s.ticks,
            s.polls,
            s.poll_entries,
            s.max_inflight,
            s.cache_hits as f64 / s.completed.max(1) as f64,
            s.cpu.as_ms(),
            s.requests_per_cpu_sec(),
        );
        assert_eq!(s.failed, 0);
        assert!(s.max_inflight >= conns, "all clients in flight at once");
    }
    let mut g = quick(c.benchmark_group("event_loop"));
    for conns in [256usize, 1024, 2048] {
        g.throughput(Throughput::Elements(2 * conns as u64));
        g.bench_function(format!("conns_{conns}"), |b| {
            b.iter(|| run_event_loop(conns, 2).stats.completed)
        });
    }
    g.finish();
}

/// Builds and runs one mixed GET/PUT event-loop pass (PR 10):
/// `put_ratio` of the requests upload fresh document bodies through the
/// zero-copy ingest path (dirty unified-cache installs, write-back
/// between request events); the rest are Zipf-sampled GETs. Returns the
/// loop report plus the kernel's metrics so the stats pass can read the
/// flush/NVM counters.
fn run_mixed_loop(
    conns: usize,
    reqs_per_conn: usize,
    put_ratio: f64,
    wb: WritebackConfig,
) -> (iolite_http::LoopReport, iolite_core::Metrics) {
    let workload = Workload::synthesize(&loop_spec(), 13);
    let mut kernel = Kernel::with_policy(CostModel::pentium_ii_333(), Policy::Gds);
    kernel.set_writeback(wb);
    let pid = kernel.spawn("server");
    let paths: Vec<String> = workload
        .files()
        .iter()
        .map(|f| {
            kernel.create_synthetic_file(&f.name, f.bytes, 13 ^ f.bytes);
            f.name.clone()
        })
        .collect();
    let mut rng = SimRng::new(conns as u64 ^ 0x1091_0e5e);
    let scripts: Vec<Vec<String>> = (0..conns)
        .map(|_| {
            (0..reqs_per_conn)
                .map(|_| {
                    let path = &paths[workload.sample_request(&mut rng)];
                    if rng.chance(put_ratio) {
                        // Replacement bodies up to twice the corpus's
                        // mean document size, never degenerate.
                        format!("PUT {path} {}", 1 + rng.next_below(32 * 1024))
                    } else {
                        path.clone()
                    }
                })
                .collect()
        })
        .collect();
    let cfg = iolite_http::EventLoopConfig {
        drain_per_tick: 16 * 1024,
        ..iolite_http::EventLoopConfig::default()
    };
    let (report, kernel) = iolite_http::EventLoopServer::new(kernel, pid, scripts, None, cfg).run();
    assert_eq!(report.stats.blocked_io, 0, "readiness-driven: no spin");
    let metrics = kernel.metrics.clone();
    (report, metrics)
}

fn bench_event_loop_mixed_writes(c: &mut Criterion) {
    // Deterministic stats passes: the three write-burst tables recorded
    // in EXPERIMENTS.md, next to the read-only table above.
    //
    // (1) Read-latency interference: how much does admitting PUTs cost
    // the GETs sharing the loop?
    println!("write interference at 1024 conns (WritebackConfig::default_tuning):");
    for ratio in [0.0f64, 0.1, 0.3, 0.5] {
        let (report, m) = run_mixed_loop(1024, 2, ratio, WritebackConfig::default_tuning());
        let s = report.stats;
        println!(
            "  {:>3.0}% PUT: {} requests ({} puts, {} KB ingested), \
             {} flushes, sim CPU {:.1}ms => {:.0} requests/cpu-sec",
            ratio * 100.0,
            s.completed,
            s.puts,
            s.put_bytes >> 10,
            m.writeback_flushes,
            s.cpu.as_ms(),
            s.requests_per_cpu_sec(),
        );
        assert_eq!(s.failed, 0);
        assert!(ratio == 0.0 || s.puts > 0, "the mix must actually write");
    }
    // (2) Dirty-threshold x flush-batch sweep (CAWL's two knobs) at the
    // 30% PUT point.
    println!("dirty-threshold x flush-batch sweep at 1024 conns, 30% PUT:");
    for dirty_kb in [16u64, 64, 256] {
        for batch_kb in [64u64, 256] {
            let wb = WritebackConfig {
                dirty_threshold_bytes: dirty_kb << 10,
                flush_batch_bytes: batch_kb << 10,
                ..WritebackConfig::default_tuning()
            };
            let (_, m) = run_mixed_loop(1024, 2, 0.3, wb);
            println!(
                "  dirty {dirty_kb:>3} KB, batch {batch_kb:>3} KB: \
                 {} flushes, {} KB written back ({} KB via NVM), \
                 {} disk writes",
                m.writeback_flushes,
                m.bytes_written_back >> 10,
                m.nvm_absorbed_bytes >> 10,
                m.disk_write_ops,
            );
        }
    }
    // (3) NVM-tier absorption: the staging tier's capacity decides how
    // much of the burst skips the disk's positioning costs.
    println!("NVM staging-tier absorption at 1024 conns, 30% PUT:");
    for nvm_mb in [0u64, 1, 8] {
        let wb = WritebackConfig {
            nvm_capacity_bytes: nvm_mb << 20,
            ..WritebackConfig::default_tuning()
        };
        let (_, m) = run_mixed_loop(1024, 2, 0.3, wb);
        println!(
            "  NVM {nvm_mb} MB: {} KB written back ({} KB absorbed, \
             {} KB demoted), {} disk writes / {} KB",
            m.bytes_written_back >> 10,
            m.nvm_absorbed_bytes >> 10,
            m.nvm_demoted_bytes >> 10,
            m.disk_write_ops,
            m.disk_write_bytes >> 10,
        );
    }
    let mut g = quick(c.benchmark_group("event_loop"));
    let (conns, ratio) = (1024usize, 0.3f64);
    g.throughput(Throughput::Elements(2 * conns as u64));
    g.bench_function("conns_1024_put30", |b| {
        b.iter(|| {
            run_mixed_loop(conns, 2, ratio, WritebackConfig::default_tuning())
                .0
                .stats
                .completed
        })
    });
    g.finish();
}

// ---- sharded sweep (PR 7) ----------------------------------------------

/// Per-shard cache budget for the headline rows: every shard is a
/// whole stock `pentium_ii_333` machine (128 MB — the same budget
/// every prior serve_scale table ran under), i.e. per-core
/// provisioning where fleet RAM grows with the fleet. A separate
/// fixed-total row splits this one machine's budget across two
/// shards to quantify what replicating the Zipf head costs when
/// adding shards cannot add memory.
const SWEEP_SHARD_RAM: u64 = 128 << 20;
/// Per-shard admission limit: bounds in-flight response memory at the
/// 2^18-connection point.
const SWEEP_ADMISSION: usize = 2048;

/// (total connections, shard counts) for the sweep; fast mode keeps the
/// CI run bounded, the full run produces the committed table.
/// `IOLITE_SWEEP_CONNS` overrides the connection count for local
/// experiments between the two sizes.
fn sweep_params() -> (usize, Vec<usize>) {
    let fast = std::env::var_os("CRITERION_SHIM_FAST").is_some();
    let conns = std::env::var("IOLITE_SWEEP_CONNS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(if fast { 1 << 12 } else { 1 << 18 });
    if fast {
        (conns, vec![1, 2])
    } else {
        (conns, vec![1, 2, 4, 8])
    }
}

/// One sweep point: `total_conns` single-request Zipf connections over
/// `shards` shared-nothing shards, each owning `ram_per_shard` bytes
/// of cache budget.
fn run_sweep_point(
    workload: &Workload,
    shards: usize,
    ownership: CacheOwnership,
    total_conns: usize,
    ram_per_shard: u64,
) -> ShardedReport {
    let mut cost = CostModel::pentium_ii_333();
    cost.ram_bytes = ram_per_shard;
    let cfg = ShardedConfig {
        shards,
        ownership,
        cost,
        policy: Policy::Gds,
        journal: false,
        loop_cfg: iolite_http::EventLoopConfig {
            drain_per_tick: 16 * 1024,
            admission_limit: SWEEP_ADMISSION,
            ..iolite_http::EventLoopConfig::default()
        },
    };
    let paths: Vec<String> = workload.files().iter().map(|f| f.name.clone()).collect();
    let mut rng = SimRng::new(0x5eed);
    // Structured conn ids (stride 4096): shard routing sees the id
    // spaces real listeners hand out, not dense integers.
    let conns: Vec<(u64, Vec<String>)> = (0..total_conns)
        .map(|j| {
            let path = paths[workload.sample_request(&mut rng)].clone();
            (j as u64 * 4096, vec![path])
        })
        .collect();
    let report = run_sharded(
        &cfg,
        |k: &mut Kernel| {
            let reserve = k.cost.server_reserve_bytes;
            k.physmem.reserve(MemAccount::Server, reserve);
            let pid = k.spawn("server");
            for f in workload.files() {
                k.create_synthetic_file(&f.name, f.bytes, 7 ^ f.bytes);
            }
            pid
        },
        conns,
    );
    assert_eq!(report.failed(), 0);
    for s in &report.shards {
        assert_eq!(
            s.report.stats.blocked_io, 0,
            "shard {} must stay readiness-driven",
            s.shard
        );
    }
    report
}

/// A formatted sweep row plus its JSON encoding.
struct SweepRow {
    shards: usize,
    ownership: &'static str,
    report: ShardedReport,
    total_conns: usize,
    ram_per_shard: u64,
}

impl SweepRow {
    fn hit_rate(&self) -> f64 {
        let (mut hits, mut misses) = (0u64, 0u64);
        for s in &self.report.shards {
            let cs = s.kernel.cache.stats();
            hits += cs.hits;
            misses += cs.misses;
        }
        hits as f64 / (hits + misses).max(1) as f64
    }

    fn evictions(&self) -> u64 {
        self.report
            .shards
            .iter()
            .map(|s| s.kernel.cache.stats().evictions)
            .sum()
    }

    fn json(&self, speedup: f64) -> String {
        format!(
            "    {{\"shards\": {}, \"ownership\": \"{}\", \"connections\": {}, \
             \"cache_ram_per_shard_bytes\": {}, \
             \"completed\": {}, \"requests_per_cpu_sec\": {:.0}, \
             \"speedup_vs_one_shard\": {:.2}, \"makespan_cpu_ms\": {:.1}, \
             \"imbalance\": {:.3}, \"hit_rate\": {:.3}, \"evictions\": {}, \
             \"remote_fetches\": {}}}",
            self.shards,
            self.ownership,
            self.total_conns,
            self.ram_per_shard,
            self.report.completed(),
            self.report.requests_per_cpu_sec(),
            speedup,
            self.report.max_shard_cpu().as_ms(),
            self.report.imbalance(),
            self.hit_rate(),
            self.evictions(),
            self.report.remote_reads(),
        )
    }
}

fn bench_sharded_sweep(c: &mut Criterion) {
    let fast = std::env::var_os("CRITERION_SHIM_FAST").is_some();
    let (total_conns, shard_counts) = sweep_params();
    let workload = Workload::synthesize(&scale_spec(), 7);
    // Deterministic stats pass: the committed scaling table. Headline
    // rows are per-core provisioned (every shard gets the PR 3
    // single-kernel budget).
    let mut rows: Vec<SweepRow> = shard_counts
        .iter()
        .map(|&shards| SweepRow {
            shards,
            ownership: "replicate",
            report: run_sweep_point(
                &workload,
                shards,
                CacheOwnership::Replicate,
                total_conns,
                SWEEP_SHARD_RAM,
            ),
            total_conns,
            ram_per_shard: SWEEP_SHARD_RAM,
        })
        .collect();
    // One HomeOnly point at the largest fleet: quantifies what hot-spot
    // concentration costs when replicas are forbidden.
    let largest = *shard_counts.last().expect("non-empty sweep");
    if largest > 1 {
        rows.push(SweepRow {
            shards: largest,
            ownership: "home_only",
            report: run_sweep_point(
                &workload,
                largest,
                CacheOwnership::HomeOnly,
                total_conns,
                SWEEP_SHARD_RAM,
            ),
            total_conns,
            ram_per_shard: SWEEP_SHARD_RAM,
        });
        // One fixed-total-RAM point: the single-kernel budget *split*
        // across two shards. Replicating the Zipf head into half-size
        // caches is the measured cost of shared-nothing sharding when
        // adding shards cannot add memory (see EXPERIMENTS.md).
        rows.push(SweepRow {
            shards: 2,
            ownership: "replicate",
            report: run_sweep_point(
                &workload,
                2,
                CacheOwnership::Replicate,
                total_conns,
                SWEEP_SHARD_RAM / 2,
            ),
            total_conns,
            ram_per_shard: SWEEP_SHARD_RAM / 2,
        });
    }
    let base_rps = rows[0].report.requests_per_cpu_sec();
    println!(
        "sharded_sweep ({total_conns} connections, {} MB cache budget per shard):",
        SWEEP_SHARD_RAM >> 20
    );
    let mut json_rows = Vec::new();
    for row in &rows {
        let speedup = row.report.requests_per_cpu_sec() / base_rps;
        println!(
            "  {} shard(s) [{} @ {} MB/shard]: {:.0} req/cpu-sec ({:.2}x), \
             makespan {:.1}ms, imbalance {:.3}, hit rate {:.3}, {} evictions, \
             {} remote fetches ({} waits)",
            row.shards,
            row.ownership,
            row.ram_per_shard >> 20,
            row.report.requests_per_cpu_sec(),
            speedup,
            row.report.max_shard_cpu().as_ms(),
            row.report.imbalance(),
            row.hit_rate(),
            row.evictions(),
            row.report.remote_reads(),
            row.report
                .shards
                .iter()
                .map(|s| s.report.stats.remote_waits)
                .sum::<u64>(),
        );
        json_rows.push(row.json(speedup));
    }
    let json = format!(
        "{{\n  \"bench\": \"serve_scale/sharded_sweep\",\n  \
         \"corpus\": \"{}\",\n  \"cache_ram_per_shard_bytes\": {},\n  \
         \"admission_limit\": {},\n  \"fast_mode\": {},\n  \"rows\": [\n{}\n  ]\n}}\n",
        scale_spec().name,
        SWEEP_SHARD_RAM,
        SWEEP_ADMISSION,
        fast,
        json_rows.join(",\n")
    );
    // Only the full-size run regenerates the committed artifact — the
    // fast CI sweep would otherwise clobber the real table with its
    // 4096-connection smoke numbers.
    if !fast {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve_scale.json");
        write_artifact(path, &json);
        println!("sharded_sweep table written to {path}");
    }

    // The PR 7 acceptance bar, checked on the full-size sweep after
    // the whole table and JSON artifact are out (a failing run still
    // leaves full diagnostics). The fast CI sweep is too small to be
    // meaningful and the fixed-total row is exempt — it exists to
    // measure the replication tax, not to clear the bar.
    if !fast {
        for row in &rows {
            if row.ownership != "replicate" || row.ram_per_shard != SWEEP_SHARD_RAM {
                continue;
            }
            let speedup = row.report.requests_per_cpu_sec() / base_rps;
            if row.shards == 2 {
                assert!(speedup >= 1.7, "2-shard speedup {speedup:.2} < 1.7");
            }
            if row.shards == 4 {
                assert!(speedup >= 3.0, "4-shard speedup {speedup:.2} < 3.0");
            }
        }
    }

    // Timed: one mid-size 2-shard point per iteration.
    let mut g = quick(c.benchmark_group("sharded"));
    g.throughput(Throughput::Elements(1 << 12));
    g.bench_function("shards_2_conns_4096", |b| {
        b.iter(|| {
            run_sweep_point(&workload, 2, CacheOwnership::Replicate, 1 << 12, SWEEP_SHARD_RAM)
                .completed()
        })
    });
    g.finish();
}

/// Host-side artifact write. The `disallowed_types` lint banning
/// `std::fs::File` guards the pure kernel core; bench tooling writing
/// its own results file is exactly the host I/O the kernel never does.
#[allow(clippy::disallowed_types)]
fn write_artifact(path: &str, contents: &str) {
    std::fs::File::create(path)
        .and_then(|mut f| f.write_all(contents.as_bytes()))
        .expect("write bench artifact");
}

criterion_group!(
    benches,
    bench_request_churn,
    bench_evict_pinned_prefix,
    bench_cksum_cold_pressure,
    bench_event_loop_concurrency,
    bench_event_loop_mixed_writes,
    bench_sharded_sweep
);
criterion_main!(benches);

//! `serve_scale`: reference-aware caching at production scale (§3.7,
//! §3.9), and event-loop throughput vs concurrency (PR 5).
//!
//! Four scenarios guard the cache layer's and event loop's scaling
//! behaviour:
//!
//! * `request_churn_10k` — the real HTTP driver path (`serve_static`)
//!   over a 10k-file Zipf corpus with thousands of concurrent
//!   connections holding pins mid-transmission, while the memory
//!   accountant wobbles the cache budget under load. A deterministic
//!   stats pass prints eviction counts and hit rates (recorded in
//!   EXPERIMENTS.md) before the timed run.
//! * `evict_pinned_prefix` — adversarial eviction cost vs entry count:
//!   every entry except the best victim is pinned, so a scan-based
//!   `evict_one` walks the whole pinned prefix while an indexed one
//!   stays O(log n).
//! * `cksum_cold_pressure` — a hot slice's checksum must survive an
//!   overflow of cold slices through the bounded checksum cache.
//! * `event_loop_concurrency` — throughput vs concurrency through the
//!   readiness-driven server: 256/1024/2048 nonblocking connections
//!   multiplexed per `iol_poll` tick over a Zipf corpus, zero busy-spin
//!   (asserted). A deterministic stats pass prints requests per
//!   simulated CPU second at each level (recorded in EXPERIMENTS.md).

use std::collections::VecDeque;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use iolite_buf::{Acl, Aggregate, BufferPool, PoolId, Slice};
use iolite_core::{CostModel, Fd, Kernel};
use iolite_fs::{CacheKey, FileId, Policy, UnifiedCache};
use iolite_http::{server::serve_static, ServerKind};
use iolite_net::{ChecksumCache, DEFAULT_MSS, DEFAULT_TSS};
use iolite_sim::SimRng;
use iolite_trace::{TraceSpec, Workload};
use iolite_vm::MemAccount;

/// Short measurement windows: benches document magnitudes, not publishable
/// microbenchmark precision.
fn quick<M: criterion::measurement::Measurement>(
    mut g: criterion::BenchmarkGroup<'_, M>,
) -> criterion::BenchmarkGroup<'_, M> {
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(2));
    g
}

/// The 10k-file corpus: Zipf popularity, log-normal sizes, three times
/// the cache budget so eviction never stops.
fn scale_spec() -> TraceSpec {
    TraceSpec {
        name: "SCALE-10K",
        files: 10_000,
        total_bytes: 192 << 20,
        requests: 1_000_000,
        mean_request_bytes: 16 << 10,
        zipf_s: 1.0,
        size_sigma: 1.4,
    }
}

/// Number of simulated concurrent connections (and the depth of the
/// in-flight pin queue: every response in flight pins its cache entry
/// until the transmission drains, §3.7).
const CONNS: usize = 2048;
const PIN_DEPTH: usize = 4096;
/// Budget wobble: extra socket-copy reservation toggled under load.
const WOBBLE_BYTES: u64 = 24 << 20;
/// Length of the deterministic stats pass.
const STATS_REQUESTS: u64 = 30_000;

struct ScaleRig {
    kernel: Kernel,
    pid: iolite_core::Pid,
    /// The server's open-file set (one descriptor per corpus file).
    files: Vec<Fd>,
    /// Kernel socket descriptors, one per simulated connection.
    socks: Vec<Fd>,
    workload: Workload,
    rng: SimRng,
    inflight: VecDeque<CacheKey>,
    served: u64,
    wobbled: bool,
}

impl ScaleRig {
    fn new() -> Self {
        let workload = Workload::synthesize(&scale_spec(), 7);
        let mut cost = CostModel::pentium_ii_333();
        cost.ram_bytes = 64 << 20;
        let mut kernel = Kernel::with_policy(cost, Policy::Gds);
        // Undersize the checksum cache relative to the corpus's slice
        // population so its replacement policy is actually exercised
        // (the kernel default never overflows in a 30k-request pass).
        kernel.cksum = ChecksumCache::new(8192);
        kernel
            .physmem
            .reserve(MemAccount::Server, cost.server_reserve_bytes);
        let pid = kernel.spawn("server");
        let files: Vec<Fd> = workload
            .files()
            .iter()
            .map(|f| {
                let id = kernel.create_synthetic_file(&f.name, f.bytes, 7 ^ f.bytes);
                kernel.open_file(pid, id)
            })
            .collect();
        let socks = (0..CONNS)
            .map(|_| {
                kernel.socket_create(pid, ServerKind::FlashLite.buffer_mode(), DEFAULT_MSS, DEFAULT_TSS)
            })
            .collect();
        ScaleRig {
            kernel,
            pid,
            files,
            socks,
            workload,
            rng: SimRng::new(11),
            inflight: VecDeque::with_capacity(PIN_DEPTH + 1),
            served: 0,
            wobbled: false,
        }
    }

    /// Serves one Zipf-sampled request with pin churn and periodic
    /// budget wobble; returns response bytes.
    fn step(&mut self) -> u64 {
        let idx = self.workload.sample_request(&mut self.rng);
        let file = self.files[idx];
        let sock = self.socks[self.served as usize % CONNS];
        let rc = serve_static(&mut self.kernel, ServerKind::FlashLite, sock, self.pid, file);
        if let Some(key) = rc.pin_key {
            self.inflight.push_back(key);
        }
        // The oldest in-flight transmission drains: release its pin.
        if self.inflight.len() > PIN_DEPTH {
            let key = self.inflight.pop_front().expect("non-empty");
            self.kernel.cache_unpin(key);
        }
        self.served += 1;
        // Budget shrink under load: competing socket-buffer memory
        // appears and disappears; rebalance drives set_budget.
        if self.served.is_multiple_of(512) {
            if self.wobbled {
                self.kernel
                    .physmem
                    .release(MemAccount::SocketCopies, WOBBLE_BYTES);
            } else {
                self.kernel
                    .physmem
                    .reserve(MemAccount::SocketCopies, WOBBLE_BYTES);
            }
            self.wobbled = !self.wobbled;
            self.kernel.rebalance_cache();
        }
        rc.response_bytes
    }
}

fn bench_request_churn(c: &mut Criterion) {
    let mut rig = ScaleRig::new();
    // Deterministic stats pass: same numbers on every run, recorded in
    // EXPERIMENTS.md as the before/after comparison.
    for _ in 0..STATS_REQUESTS {
        rig.step();
    }
    let cs = rig.kernel.cache.stats();
    let ck = rig.kernel.cksum.stats();
    println!(
        "serve_scale stats after {STATS_REQUESTS} requests: \
         file cache {} entries, {} evictions ({} pinned), hit rate {:.3}; \
         checksum cache hit rate {:.3} ({} hits / {} misses)",
        rig.kernel.cache.len(),
        cs.evictions,
        cs.pinned_evictions,
        cs.hits as f64 / (cs.hits + cs.misses).max(1) as f64,
        ck.hits as f64 / (ck.hits + ck.misses).max(1) as f64,
        ck.hits,
        ck.misses,
    );
    let mut g = quick(c.benchmark_group("serve_scale"));
    g.throughput(Throughput::Elements(1));
    g.bench_function("request_churn_10k", |b| b.iter(|| rig.step()));
    g.finish();
}

fn bench_evict_pinned_prefix(c: &mut Criterion) {
    let mut g = quick(c.benchmark_group("cache_evict"));
    g.throughput(Throughput::Elements(1));
    for n in [1_000u64, 10_000, 50_000] {
        let pool = BufferPool::new(PoolId(1), Acl::kernel_only(), 64 * 1024);
        let mut cache = UnifiedCache::new(Policy::Lru, u64::MAX);
        for i in 0..n {
            let key = CacheKey::whole(FileId(i));
            cache.insert(key, Aggregate::from_bytes(&pool, &[0xEE; 256]));
            // Pin everything except the newest entry: the network holds
            // the rest mid-transmission, so the victim search must pass
            // over the whole pinned population.
            if i < n - 1 {
                cache.pin(&key);
            }
        }
        g.bench_function(format!("pinned_prefix_{n}"), |b| {
            b.iter(|| {
                // Steady state: evict the single unpinned entry and
                // reinsert it as the newest unpinned one.
                let (key, agg) = cache.evict_one().expect("victim");
                cache.insert(key, agg);
                key
            })
        });
    }
    g.finish();
}

fn bench_cksum_cold_pressure(c: &mut Criterion) {
    let pool = BufferPool::new(PoolId(2), Acl::kernel_only(), 64 * 1024);
    let hot_agg = Aggregate::from_bytes(&pool, &[0x5A; 1000]);
    let hot = hot_agg.slice_at(0).clone();
    let cold: Vec<Slice> = (0..8192)
        .map(|i| {
            Aggregate::from_bytes(&pool, &[(i % 251) as u8; 32])
                .slice_at(0)
                .clone()
        })
        .collect();
    // Deterministic stats pass: a hot document is retransmitted every 8
    // requests while 8192 one-off cold slices stream through a
    // 1024-entry cache.
    let mut cache = ChecksumCache::new(1024);
    cache.sum_for(&hot);
    let mut hot_hits = 0u64;
    let mut hot_accesses = 0u64;
    for (i, s) in cold.iter().enumerate() {
        cache.sum_for(s);
        if i % 8 == 0 {
            let computed_before = cache.stats().bytes_computed;
            cache.sum_for(&hot);
            hot_accesses += 1;
            if cache.stats().bytes_computed == computed_before {
                hot_hits += 1;
            }
        }
    }
    let st = cache.stats();
    println!(
        "cksum_cold_pressure stats: hot slice hit {hot_hits}/{hot_accesses}, \
         overall hit rate {:.3} ({} hits / {} misses)",
        st.hits as f64 / (st.hits + st.misses).max(1) as f64,
        st.hits,
        st.misses,
    );
    let mut g = quick(c.benchmark_group("cksum_cold_pressure"));
    g.throughput(Throughput::Elements(9));
    let mut i = 0usize;
    g.bench_function("sum_under_pressure", |b| {
        b.iter(|| {
            // 8 cold slices + 1 hot retransmission per iteration.
            let mut acc = 0u16;
            for _ in 0..8 {
                acc ^= cache.sum_for(&cold[i % cold.len()]).sum;
                i += 1;
            }
            acc ^ cache.sum_for(&hot).sum
        })
    });
    g.finish();
}

/// The event-loop corpus: smaller than SCALE-10K (each timed iteration
/// rebuilds the rig), still Zipf-skewed with a multi-chunk tail.
fn loop_spec() -> TraceSpec {
    TraceSpec {
        name: "LOOP-512",
        files: 512,
        total_bytes: 24 << 20,
        requests: 100_000,
        mean_request_bytes: 16 << 10,
        zipf_s: 1.0,
        size_sigma: 1.2,
    }
}

/// Builds and runs one event-loop pass: `conns` closed-loop clients,
/// `reqs_per_conn` Zipf-sampled requests each.
fn run_event_loop(conns: usize, reqs_per_conn: usize) -> iolite_http::LoopReport {
    let workload = Workload::synthesize(&loop_spec(), 13);
    let mut kernel = Kernel::with_policy(CostModel::pentium_ii_333(), Policy::Gds);
    let pid = kernel.spawn("server");
    let paths: Vec<String> = workload
        .files()
        .iter()
        .map(|f| {
            kernel.create_synthetic_file(&f.name, f.bytes, 13 ^ f.bytes);
            f.name.clone()
        })
        .collect();
    let mut rng = SimRng::new(conns as u64);
    let scripts: Vec<Vec<String>> = (0..conns)
        .map(|_| {
            (0..reqs_per_conn)
                .map(|_| paths[workload.sample_request(&mut rng)].clone())
                .collect()
        })
        .collect();
    let cfg = iolite_http::EventLoopConfig {
        drain_per_tick: 16 * 1024,
        ..iolite_http::EventLoopConfig::default()
    };
    let (report, _) = iolite_http::EventLoopServer::new(kernel, pid, scripts, None, cfg).run();
    assert_eq!(report.stats.blocked_io, 0, "readiness-driven: no spin");
    report
}

fn bench_event_loop_concurrency(c: &mut Criterion) {
    // Deterministic stats pass: throughput vs concurrency, printed for
    // the EXPERIMENTS.md table.
    for conns in [256usize, 1024, 2048] {
        let report = run_event_loop(conns, 2);
        let s = report.stats;
        println!(
            "event_loop stats at {conns} conns: {} requests in {} ticks \
             ({} polls, {} fds scanned), max in-flight {}, hit rate {:.3}, \
             sim CPU {:.1}ms => {:.0} requests/cpu-sec",
            s.completed,
            s.ticks,
            s.polls,
            s.poll_entries,
            s.max_inflight,
            s.cache_hits as f64 / s.completed.max(1) as f64,
            s.cpu.as_ms(),
            s.requests_per_cpu_sec(),
        );
        assert_eq!(s.failed, 0);
        assert!(s.max_inflight >= conns, "all clients in flight at once");
    }
    let mut g = quick(c.benchmark_group("event_loop"));
    for conns in [256usize, 1024, 2048] {
        g.throughput(Throughput::Elements(2 * conns as u64));
        g.bench_function(format!("conns_{conns}"), |b| {
            b.iter(|| run_event_loop(conns, 2).stats.completed)
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_request_churn,
    bench_evict_pinned_prefix,
    bench_cksum_cold_pressure,
    bench_event_loop_concurrency
);
criterion_main!(benches);

//! Figure-regeneration benchmarks: each bench runs its figure's sweep at
//! reduced scale and, once per process, prints the measured series so
//! `cargo bench` output documents the reproduction (see also the `repro`
//! binary for full-scale runs).

use criterion::{criterion_group, criterion_main, Criterion};
use iolite_bench::figures::{self, Scale};

/// Prints the miniature series once (skipped under `cargo test`).
fn print_series_once() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    if std::env::args().any(|a| a == "--test") {
        return;
    }
    ONCE.call_once(|| {
        let s = Scale::fast();
        eprintln!("--- reduced-scale figure series (use `repro all` for full scale) ---");
        for (name, rows) in [("fig03", figures::fig03(s)), ("fig04", figures::fig04(s))] {
            eprintln!("{name}: size -> [Flash-Lite, Flash, Apache] Mb/s");
            for r in rows {
                eprintln!(
                    "  {:>7}B {:>7.1} {:>7.1} {:>7.1}",
                    r.x, r.mbps[0], r.mbps[1], r.mbps[2]
                );
            }
        }
        for row in figures::fig13(s) {
            eprintln!(
                "fig13 {:>8}: POSIX {:>8.1}ms IO-Lite {:>8.1}ms ({:+.1}%, paper -{:.0}%)",
                row.name,
                row.posix_ms,
                row.iolite_ms,
                -row.reduction_pct(),
                row.paper_reduction_pct
            );
        }
    });
}

fn bench_figures(c: &mut Criterion) {
    print_series_once();
    let s = Scale::fast();
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    g.bench_function("fig03_single_file", |b| b.iter(|| figures::fig03(s)));
    g.bench_function("fig04_persistent", |b| b.iter(|| figures::fig04(s)));
    g.bench_function("fig05_cgi", |b| b.iter(|| figures::fig05(s)));
    g.bench_function("fig06_cgi_persistent", |b| b.iter(|| figures::fig06(s)));
    g.bench_function("fig07_trace_synthesis", |b| b.iter(figures::fig07));
    g.bench_function("fig08_trace_replay", |b| b.iter(|| figures::fig08(s)));
    g.bench_function("fig09_subtrace", |b| b.iter(figures::fig09));
    g.bench_function("fig10_dataset_sweep", |b| b.iter(|| figures::fig10(s)));
    g.bench_function("fig11_ablation", |b| b.iter(|| figures::fig11(s)));
    g.bench_function("fig12_wan", |b| b.iter(|| figures::fig12(s)));
    g.bench_function("fig13_apps", |b| b.iter(|| figures::fig13(s)));
    g.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);

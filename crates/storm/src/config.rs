//! The knob set that fully determines a storm.
//!
//! A [`StormConfig`] plus nothing else reproduces a run bit-for-bit:
//! every random draw (corpus sizes, request scripts, client roles,
//! per-segment fault coin flips, jitter delays) comes from
//! [`iolite_sim::SimRng`] streams forked from `seed`, and all ordering
//! comes from [`iolite_sim::EventQueue`]'s deterministic tie-breaking.

/// Seed plus fault-rate knobs for one storm run. Everything the run
/// does — corpus, scripts, roles, losses, delays — derives from these
/// fields alone.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StormConfig {
    /// Root seed; every sub-stream forks from it.
    pub seed: u64,
    /// Shards in the fleet (1 = single kernel, no fabric traffic).
    pub shards: usize,
    /// Closed-loop clients (each is one connection).
    pub clients: usize,
    /// Requests per client script.
    pub requests_per_client: usize,
    /// Files in the synthetic corpus (`/f0`, `/f1`, …).
    pub files: usize,
    /// Largest corpus file, bytes (sizes are drawn in `[512, max]`).
    pub max_file_bytes: u64,
    /// Per-segment (and per-ACK) drop probability.
    pub loss: f64,
    /// Per-segment duplication probability (the copy takes its own
    /// jittered path, so duplicates commonly arrive out of order).
    pub dup: f64,
    /// Probability a segment draws extra jitter delay — the reordering
    /// mechanism: a delayed segment is overtaken by its successors.
    pub reorder: f64,
    /// Round-trip propagation time, microseconds (one-way = half).
    pub rtt_us: u64,
    /// Maximum extra delay for a reordered segment, microseconds.
    pub jitter_us: u64,
    /// Fraction of clients playing slowloris: request bytes dribbled a
    /// few bytes per beat, response bytes consumed (and thus ACKed) in
    /// small paced chunks instead of at wire speed.
    pub slowloris: f64,
    /// Fraction of clients that reset (FIN/RST) mid-response.
    pub reset: f64,
    /// Fraction of clients with a staggered (late) start — connection
    /// churn: conns come alive and die throughout the run instead of
    /// in lockstep.
    pub churn: f64,
    /// Server tick cadence in simulated microseconds.
    pub tick_us: u64,
    /// Slowloris pacing beat, microseconds.
    pub slow_interval_us: u64,
    /// Response bytes a slowloris client consumes per beat.
    pub slow_chunk: u64,
    /// Wire flight-size cap per direction, bytes (the sliding window).
    pub wire_window: u64,
    /// Probability a script entry is a PUT upload instead of a GET.
    /// Zero keeps the plan's RNG draw sequence byte-identical to the
    /// read-only engine (the PUT draws are guarded), so every pinned
    /// pre-write seed still reproduces exactly.
    pub put: f64,
    /// Largest PUT body, bytes (lengths are drawn in `[1, max]`).
    pub max_put_bytes: u64,
    /// Safety bound forwarded to the event loop.
    pub max_ticks: u64,
    /// Record exact response bytes (equivalence suites; off for speed).
    pub capture_responses: bool,
}

impl StormConfig {
    /// A moderately hostile default: ~1% loss, 1% duplication, heavy
    /// reordering, a quarter of the clients slowloris, no resets or
    /// churn (every request must complete).
    pub fn hostile(seed: u64) -> StormConfig {
        StormConfig {
            seed,
            shards: 1,
            clients: 8,
            requests_per_client: 2,
            files: 6,
            max_file_bytes: 24 * 1024,
            loss: 0.01,
            dup: 0.01,
            reorder: 0.25,
            rtt_us: 2_000,
            jitter_us: 1_500,
            slowloris: 0.25,
            reset: 0.0,
            churn: 0.0,
            tick_us: 200,
            slow_interval_us: 1_000,
            slow_chunk: 2 * 1024,
            wire_window: 16 * 1460,
            put: 0.0,
            max_put_bytes: 8 * 1024,
            max_ticks: 2_000_000,
            capture_responses: false,
        }
    }

    /// A clean wire: no loss, no duplication, no reordering, no jitter,
    /// every client at full speed. The anchor for equivalence checks.
    pub fn calm(seed: u64) -> StormConfig {
        StormConfig {
            loss: 0.0,
            dup: 0.0,
            reorder: 0.0,
            jitter_us: 0,
            slowloris: 0.0,
            ..StormConfig::hostile(seed)
        }
    }

    /// Everything at once: loss, duplication, reordering, slowloris,
    /// mid-response resets, and connection churn. Completion of every
    /// request is *not* guaranteed here — the contract is that the
    /// server survives, stays readiness-driven, and leaks nothing.
    pub fn chaos(seed: u64) -> StormConfig {
        StormConfig {
            loss: 0.02,
            dup: 0.02,
            reset: 0.3,
            churn: 0.4,
            ..StormConfig::hostile(seed)
        }
    }

    /// The hostile wire with a third of the traffic PUT uploads: lost,
    /// reordered, and dribbled request *bodies* now hit the write
    /// path's ingest, and every request must still complete.
    pub fn writes(seed: u64) -> StormConfig {
        StormConfig {
            put: 0.35,
            ..StormConfig::hostile(seed)
        }
    }

    /// [`StormConfig::chaos`] plus PUT traffic: uploads torn mid-body
    /// by resets, duplicated body segments, churned writers. The
    /// contract gains a clause — a lost or reordered body must never
    /// corrupt the cache (cache-vs-store consistency is audited at end
    /// of run) or wedge a connection.
    pub fn write_chaos(seed: u64) -> StormConfig {
        StormConfig {
            put: 0.35,
            ..StormConfig::chaos(seed)
        }
    }
}

//! The storm engine: the real serving path driven over the adversarial
//! wire on simulated time.
//!
//! One [`run_storm`] call owns every shard's [`EventLoopServer`] (in
//! [`EventLoopConfig::external_wire`] mode) on a single host thread and
//! interleaves server ticks, fabric pumping, segment deliveries, ACKs,
//! retransmission timers, slowloris pacing beats, and client resets
//! through one [`EventQueue`] — the whole run is a deterministic
//! function of the [`StormConfig`].
//!
//! [`EventLoopConfig::external_wire`]: iolite_http::EventLoopConfig

use std::sync::mpsc::{sync_channel, Receiver, SyncSender};

use iolite_buf::{splitmix64, Aggregate, BufferPool};
use iolite_core::{
    replay, shard_of_conn, ConnId, CostModel, Journal, Kernel, KernelState, Metrics, Pid,
    ShardFabric, ShardMsg,
};
use iolite_fs::{CacheKey, CacheOwnership, Policy};
use iolite_http::{
    parse_put_entry, put_request_bytes, request_bytes, synthetic_put_body, EventLoopConfig,
    EventLoopServer, LoopReport, ShardContext,
};
use iolite_net::{TcpReceiver, DEFAULT_MSS, DEFAULT_TSS};
use iolite_sim::{EventQueue, SimRng, SimTime};

use crate::config::StormConfig;
use crate::wire::WireSender;

/// Extra fabric-inbox headroom beyond the fleet-wide in-flight bound
/// (mirrors the capacity contract of `iolite_http::sharded`).
const FABRIC_SLACK: usize = 8;

/// Largest dribble segment a slowloris client puts on the wire.
const DRIBBLE_BYTES: u64 = 3;

/// Wire-level counters for one storm run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WireStats {
    /// Data segments put on the wire (both directions).
    pub segments: u64,
    /// Segments the wire dropped.
    pub lost: u64,
    /// Segments the wire duplicated.
    pub duplicated: u64,
    /// Segments that drew extra jitter delay (the reordering source).
    pub reordered: u64,
    /// Retransmission timer fires that rewound a sender.
    pub rto_fires: u64,
    /// ACKs put on the wire.
    pub acks: u64,
    /// ACKs the wire dropped.
    pub acks_lost: u64,
    /// Client resets injected.
    pub resets: u64,
    /// Reassembled request bytes the kernel refused because the peer
    /// had already closed — the retransmit-after-peer-close path.
    pub deliveries_rejected: u64,
}

/// The deterministic expansion of a [`StormConfig`]: corpus, scripts,
/// roles, connection ids. [`run_storm`] works from this, and
/// equivalence tests rebuild the identical clean-wire baseline from it.
#[derive(Debug, Clone)]
pub struct StormPlan {
    /// Corpus file sizes; file `i` is named `/f{i}`.
    pub file_sizes: Vec<u64>,
    /// Per-client request scripts.
    pub scripts: Vec<Vec<String>>,
    /// Which clients play slowloris.
    pub slow: Vec<bool>,
    /// Response-byte threshold after which a client resets, if any.
    pub reset_after: Vec<Option<u64>>,
    /// Per-client start times (µs) — connection churn staggering.
    pub start_us: Vec<u64>,
    /// Full-width connection ids (shard routing and pattern keys).
    pub conn_ids: Vec<u64>,
}

/// Expands `cfg` into its corpus, scripts, and client roles — the same
/// expansion [`run_storm`] performs, exposed so a test can drive the
/// identical workload over a clean internal wire for comparison.
pub fn plan(cfg: &StormConfig) -> StormPlan {
    let mut root = SimRng::new(cfg.seed);
    let mut corpus = root.fork(1);
    let file_sizes: Vec<u64> = (0..cfg.files)
        .map(|_| 512 + corpus.next_below(cfg.max_file_bytes.saturating_sub(511).max(1)))
        .collect();
    let mut scripts_rng = root.fork(2);
    let head = (cfg.files / 4).max(1);
    let scripts: Vec<Vec<String>> = (0..cfg.clients)
        .map(|_| {
            (0..cfg.requests_per_client)
                .map(|_| {
                    // The PUT draw is guarded so a zero rate makes no
                    // RNG call at all — read-only configs keep the
                    // exact draw sequence every pinned seed was
                    // minimized against.
                    if cfg.put > 0.0 && scripts_rng.chance(cfg.put) {
                        let f = scripts_rng.next_index(cfg.files);
                        let len = 1 + scripts_rng.next_below(cfg.max_put_bytes.max(1));
                        return format!("PUT /f{f} {len}");
                    }
                    // Half the requests hit a hot head, half the tail —
                    // the cache and checksum cache see both reuse and
                    // cold misses.
                    let f = if scripts_rng.chance(0.5) {
                        scripts_rng.next_index(head)
                    } else {
                        scripts_rng.next_index(cfg.files)
                    };
                    format!("/f{f}")
                })
                .collect()
        })
        .collect();
    let mut roles = root.fork(3);
    let slow: Vec<bool> = (0..cfg.clients).map(|_| roles.chance(cfg.slowloris)).collect();
    let reset_after: Vec<Option<u64>> = (0..cfg.clients)
        .map(|_| {
            roles
                .chance(cfg.reset)
                .then(|| 1 + roles.next_below(cfg.max_file_bytes))
        })
        .collect();
    let start_us: Vec<u64> = (0..cfg.clients)
        .map(|_| {
            if roles.chance(cfg.churn) {
                // Late arrivals spread across a few thousand ticks:
                // connections come alive while others are mid-stream
                // (or already dead).
                roles.next_below(cfg.tick_us * 2_000 + 1)
            } else {
                0
            }
        })
        .collect();
    // Structured ids (stride 4096) — shard routing must spread them,
    // per the PR 5/PR 7 aliasing lesson.
    let conn_ids: Vec<u64> = (0..cfg.clients).map(|c| c as u64 * 4096).collect();
    StormPlan {
        file_sizes,
        scripts,
        slow,
        reset_after,
        start_us,
        conn_ids,
    }
}

/// The synthetic response-direction payload byte at stream offset
/// `seq` of connection `conn`. The kernel's socket send buffer models
/// occupancy, not contents, so the wire carries this deterministic
/// pattern instead; the client-side reassembly queue must reproduce it
/// byte-for-byte in order, which [`run_storm`] verifies on every
/// in-order delivery.
pub fn pattern_byte(conn: u64, seq: u64) -> u8 {
    (splitmix64(conn ^ (seq >> 3).wrapping_mul(0x9E37_79B9_7F4A_7C15)) >> ((seq & 7) * 8)) as u8
}

/// Everything a storm run produced, per shard plus wire-level totals.
pub struct StormReport {
    /// Per-shard loop reports (stats + completed requests).
    pub reports: Vec<LoopReport>,
    /// Per-shard kernels, post-run (journals already taken).
    pub kernels: Vec<Kernel>,
    /// Per-shard command journals (always recorded).
    pub journals: Vec<Journal>,
    /// Per-shard `state_hash()` at end of run.
    pub state_hashes: Vec<u64>,
    /// Per-shard kernel metrics at end of run.
    pub metrics: Vec<Metrics>,
    /// Connections hosted by each shard.
    pub conn_counts: Vec<usize>,
    /// Wire-level counters.
    pub wire: WireStats,
    /// Contract violations observed during the run (empty = clean).
    pub violations: Vec<String>,
    /// Simulated time at which the run quiesced.
    pub sim_time: SimTime,
    /// The cost model every shard ran under (replay needs it).
    pub cost: CostModel,
}

impl StormReport {
    /// Completed requests across the fleet.
    pub fn completed(&self) -> u64 {
        self.reports.iter().map(|r| r.stats.completed).sum()
    }

    /// Failed requests across the fleet.
    pub fn failed(&self) -> u64 {
        self.reports.iter().map(|r| r.stats.failed).sum()
    }

    /// Replays every shard's journal through the pure core and checks
    /// the reproduced state hashes and metrics against the live run.
    ///
    /// # Errors
    ///
    /// Returns a description of the first shard whose replay diverges.
    pub fn verify_replay(&self) -> Result<(), String> {
        for (s, journal) in self.journals.iter().enumerate() {
            let (state, metrics) = replay(KernelState::new(self.cost, Policy::Gds), journal);
            if state.state_hash() != self.state_hashes[s] {
                return Err(format!("shard {s}: replayed state hash diverges"));
            }
            if metrics != self.metrics[s] {
                return Err(format!("shard {s}: replayed metrics diverge"));
            }
        }
        Ok(())
    }
}

/// A storm event. All payload bytes are regenerated at delivery time
/// from stream positions, so events stay tiny.
#[derive(Debug, Clone, Copy)]
enum Ev {
    /// One server tick on every shard (plus fabric pumping), then a
    /// harvest of new response bytes and completions.
    Tick,
    /// Client `c` comes alive and issues its first request.
    Start { c: usize },
    /// A data segment arrives at its receiver.
    Seg { c: usize, dir: Dir, seq: u64, len: u64 },
    /// A cumulative ACK arrives back at its sender.
    Ack { c: usize, dir: Dir, ack: u64 },
    /// A retransmission timer fires (stale unless `epoch` is live).
    Rto { c: usize, dir: Dir, epoch: u64 },
    /// Slowloris pacing beat: put a few more request bytes on the wire.
    Dribble { c: usize },
    /// Slowloris consumption beat: consume (and ACK) response bytes.
    Consume { c: usize },
    /// Client `c` resets the connection (FIN/RST mid-response).
    Reset { c: usize },
}

/// Which way a segment is traveling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Dir {
    /// Client → server: real request bytes.
    Req,
    /// Server → client: response bytes in sequence space.
    Resp,
}

/// One client connection's wire state, both directions.
struct Client {
    shard: usize,
    /// Connection index within its shard's server.
    idx: usize,
    /// Pattern key (the full-width conn id).
    key: u64,
    script: Vec<String>,
    slow: bool,
    reset_after: Option<u64>,
    alive: bool,
    started: bool,
    /// Requests begun so far.
    next_req: usize,
    /// Responses the server has finished for this connection.
    completed: usize,
    /// Sum of finished responses' lengths (server-side truth).
    resp_expected: u64,
    // Client → server.
    req_stream: Vec<u8>,
    req_tx: WireSender,
    /// Server-side reassembly of request bytes — the real
    /// `iolite_net` reorder queue under fire.
    req_rx: TcpReceiver,
    dribbling: bool,
    // Server → client.
    resp_tx: WireSender,
    /// Client-side reassembly of the response pattern stream.
    resp_rx: TcpReceiver,
    /// In-order response bytes received and verified.
    resp_read: u64,
    /// Bytes consumed → cumulatively ACKed (lags `resp_read` for
    /// slowloris clients; equal otherwise).
    resp_consumed: u64,
    consuming: bool,
    /// Bytes acknowledged into `socket_drain` at the server.
    resp_drained: u64,
    reset_pending: bool,
}

/// The engine: servers, clients, queue, fault RNG.
struct Storm {
    cfg: StormConfig,
    q: EventQueue<Ev>,
    faults: SimRng,
    servers: Vec<EventLoopServer>,
    pids: Vec<Pid>,
    pools: Vec<BufferPool>,
    clients: Vec<Client>,
    /// `conn_map[s][i]` = client owning shard `s`'s connection `i`.
    conn_map: Vec<Vec<usize>>,
    /// Per-shard count of completion records already harvested.
    seen: Vec<usize>,
    /// Server ticks taken so far (liveness backstop).
    ticks: u64,
    wire: WireStats,
    violations: Vec<String>,
    /// Keeps every shard inbox connected for the whole run.
    _senders: Vec<SyncSender<ShardMsg>>,
    _done_rx: Option<Receiver<usize>>,
}

fn us(v: u64) -> SimTime {
    SimTime::from_us(v as f64)
}

/// Runs one storm to quiescence. Same `cfg` ⇒ bit-identical
/// [`StormReport`] (state hashes, metrics, stats, wire counters).
///
/// # Panics
///
/// Panics if a server's state machine wedges past
/// [`StormConfig::max_ticks`] — by construction a bug, and the panic
/// (with the seed) is the minimized reproducer.
pub fn run_storm(cfg: &StormConfig) -> StormReport {
    let plan = plan(cfg);
    let cost = CostModel::pentium_ii_333();
    let loop_cfg = EventLoopConfig {
        capture_responses: cfg.capture_responses,
        max_ticks: cfg.max_ticks,
        external_wire: true,
        ..EventLoopConfig::default()
    };

    // Partition clients onto shards by mixed full-width conn id.
    let mut shard_scripts: Vec<Vec<Vec<String>>> = vec![Vec::new(); cfg.shards];
    let mut conn_map: Vec<Vec<usize>> = vec![Vec::new(); cfg.shards];
    let mut placement = Vec::with_capacity(cfg.clients);
    for c in 0..cfg.clients {
        let s = shard_of_conn(ConnId(plan.conn_ids[c]), cfg.shards);
        placement.push((s, shard_scripts[s].len()));
        shard_scripts[s].push(plan.scripts[c].clone());
        conn_map[s].push(c);
    }

    // Every shard gets an identical corpus (same creation order, so
    // FileIds agree fleet-wide), journaled from the first command.
    let mut servers = Vec::with_capacity(cfg.shards);
    let mut pids = Vec::with_capacity(cfg.shards);
    let mut pools = Vec::with_capacity(cfg.shards);
    for scripts in shard_scripts {
        let mut kernel = Kernel::with_policy(cost, Policy::Gds);
        kernel.start_journal();
        let pid = kernel.spawn("storm-server");
        for (i, bytes) in plan.file_sizes.iter().enumerate() {
            kernel.create_synthetic_file(&format!("/f{i}"), *bytes, i as u64);
        }
        let server = EventLoopServer::new(kernel, pid, scripts, None, loop_cfg);
        pools.push(server.kernel().process(pid).pool().clone());
        pids.push(pid);
        servers.push(server);
    }

    // The fabric, attached without threads: the engine pumps each
    // shard's inbox in a fixed round-robin order, keeping cross-shard
    // traffic deterministic.
    let mut senders = Vec::new();
    let mut done_rx = None;
    if cfg.shards > 1 {
        let fabric = ShardFabric::new(cfg.shards, cfg.clients + FABRIC_SLACK);
        let (done_tx, rx) = sync_channel(cfg.shards);
        done_rx = Some(rx);
        senders = fabric.senders;
        for (server, mailbox) in servers.iter_mut().zip(fabric.mailboxes) {
            server.attach_shard(ShardContext {
                mailbox,
                shards: cfg.shards,
                ownership: CacheOwnership::Replicate,
                done_tx: done_tx.clone(),
            });
        }
    }

    let mut root = SimRng::new(cfg.seed);
    let faults = root.fork(4);
    let mss = DEFAULT_MSS as u64;
    let clients: Vec<Client> = (0..cfg.clients)
        .map(|c| {
            let (shard, idx) = placement[c];
            Client {
                shard,
                idx,
                key: plan.conn_ids[c].wrapping_add(1),
                script: plan.scripts[c].clone(),
                slow: plan.slow[c],
                reset_after: plan.reset_after[c],
                alive: true,
                started: false,
                next_req: 0,
                completed: 0,
                resp_expected: 0,
                req_stream: Vec::new(),
                req_tx: WireSender::new(mss, cfg.wire_window),
                req_rx: TcpReceiver::new(0),
                dribbling: false,
                resp_tx: WireSender::new(mss, cfg.wire_window.min(DEFAULT_TSS as u64)),
                resp_rx: TcpReceiver::new(0),
                resp_read: 0,
                resp_consumed: 0,
                consuming: false,
                resp_drained: 0,
                reset_pending: false,
            }
        })
        .collect();

    let mut storm = Storm {
        cfg: *cfg,
        q: EventQueue::new(),
        faults,
        servers,
        pids,
        pools,
        clients,
        conn_map,
        seen: vec![0; cfg.shards],
        ticks: 0,
        wire: WireStats::default(),
        violations: Vec::new(),
        _senders: senders,
        _done_rx: done_rx,
    };
    storm.q.schedule(SimTime::ZERO, Ev::Tick);
    for c in 0..storm.clients.len() {
        storm.q.schedule(us(plan.start_us[c]), Ev::Start { c });
    }
    while let Some((_, ev)) = storm.q.pop() {
        storm.handle(ev);
    }
    storm.finish(cost)
}

impl Storm {
    fn handle(&mut self, ev: Ev) {
        match ev {
            Ev::Tick => self.on_tick(),
            Ev::Start { c } => self.on_start(c),
            Ev::Seg { c, dir, seq, len } => self.on_segment(c, dir, seq, len),
            Ev::Ack { c, dir, ack } => self.on_ack(c, dir, ack),
            Ev::Rto { c, dir, epoch } => self.on_rto(c, dir, epoch),
            Ev::Dribble { c } => self.on_dribble(c),
            Ev::Consume { c } => self.on_consume(c),
            Ev::Reset { c } => self.on_reset(c),
        }
    }

    fn all_done(&self) -> bool {
        self.servers.iter().all(EventLoopServer::is_done)
    }

    fn on_tick(&mut self) {
        self.ticks += 1;
        if self.ticks > self.cfg.max_ticks {
            // Wedged: some connection can make no progress. Record the
            // full picture, kill every client so outstanding timer and
            // pacing chains die, and stop ticking — the run then drains
            // and reports instead of hanging.
            self.violations.push(format!(
                "wedged after {} ticks: {}",
                self.cfg.max_ticks,
                self.diagnose()
            ));
            for c in 0..self.clients.len() {
                self.clients[c].alive = false;
                self.clients[c].req_tx.disarm();
                self.clients[c].resp_tx.disarm();
            }
            return;
        }
        for server in &mut self.servers {
            server.tick();
        }
        // Pump the fabric to quiescence in fixed shard order: a
        // RemoteRead sent during shard A's tick is answered by shard
        // B's pump, and the RemoteData lands back on A before the next
        // tick — deterministic, no threads.
        if self.servers.len() > 1 {
            loop {
                let mut handled = 0;
                for server in &mut self.servers {
                    handled += server.pump_fabric();
                }
                if handled == 0 {
                    break;
                }
            }
        }
        self.harvest();
        if !self.all_done() {
            let dt = self.cfg.tick_us;
            self.q.schedule_after(us(dt), Ev::Tick);
        }
    }

    /// Post-tick bookkeeping: new completions, newly queued response
    /// bytes, retired connections, and next-request triggers.
    fn harvest(&mut self) {
        for s in 0..self.servers.len() {
            loop {
                let (conn, bytes) = {
                    let reqs = self.servers[s].completed_requests();
                    if self.seen[s] >= reqs.len() {
                        break;
                    }
                    let e = &reqs[self.seen[s]];
                    (e.conn, e.bytes)
                };
                self.seen[s] += 1;
                let c = self.conn_map[s][conn];
                self.clients[c].completed += 1;
                self.clients[c].resp_expected += bytes;
            }
        }
        for c in 0..self.clients.len() {
            let (s, idx) = (self.clients[c].shard, self.clients[c].idx);
            if self.servers[s].conn_done(idx) {
                // Retired (script exhausted or failed): kill timers so
                // no retransmission chain outlives the connection.
                self.clients[c].req_tx.disarm();
                self.clients[c].resp_tx.disarm();
                continue;
            }
            if !self.clients[c].started || !self.clients[c].alive {
                continue;
            }
            // New response bytes entered the send buffer this tick:
            // they go on the wire as segments.
            let pid = self.pids[s];
            let sock = self.servers[s].sock(idx);
            let unacked = self.servers[s]
                .kernel()
                .socket_unacked(pid, sock)
                .unwrap_or(0);
            let w = self.clients[c].resp_drained + unacked;
            if w > self.clients[c].resp_tx.offered() {
                self.clients[c].resp_tx.offer(w);
                self.emit(c, Dir::Resp);
            }
            // Closed loop: the next request goes out once the previous
            // response is finished at the server *and* fully received
            // at the client.
            let cl = &self.clients[c];
            if cl.next_req < cl.script.len()
                && cl.completed == cl.next_req
                && cl.resp_read == cl.resp_expected
                && cl.req_tx.done()
            {
                self.begin_request(c);
            }
        }
    }

    /// One line per unfinished connection: where it is stuck.
    fn diagnose(&self) -> String {
        let mut out = Vec::new();
        for (c, cl) in self.clients.iter().enumerate() {
            if self.servers[cl.shard].conn_done(cl.idx) {
                continue;
            }
            out.push(format!(
                "client {c} (shard {s}): started={} alive={} reqs {}/{} done {} \
                 req_tx(off={},acked={},unsent={}) resp exp={} read={} consumed={} \
                 resp_tx(off={},acked={}) drained={}",
                cl.started,
                cl.alive,
                cl.next_req,
                cl.script.len(),
                cl.completed,
                cl.req_tx.offered(),
                cl.req_tx.acked(),
                cl.req_tx.unsent(),
                cl.resp_expected,
                cl.resp_read,
                cl.resp_consumed,
                cl.resp_tx.offered(),
                cl.resp_tx.acked(),
                cl.resp_drained,
                s = cl.shard,
            ));
        }
        out.join("; ")
    }

    fn on_start(&mut self, c: usize) {
        if !self.clients[c].alive {
            return;
        }
        self.clients[c].started = true;
        self.begin_request(c);
    }

    fn begin_request(&mut self, c: usize) {
        let path = self.clients[c].script[self.clients[c].next_req].clone();
        self.clients[c].next_req += 1;
        // A `"PUT <path> <len>"` entry uploads the deterministic body;
        // anything else is a GET — the same encoding the event loop's
        // internal injection uses.
        let bytes = match parse_put_entry(&path) {
            Some((p, len)) => put_request_bytes(p, &synthetic_put_body(p, len), true),
            None => request_bytes(&path, true),
        };
        self.clients[c].req_stream.extend_from_slice(&bytes);
        let total = self.clients[c].req_stream.len() as u64;
        self.clients[c].req_tx.offer(total);
        if self.clients[c].slow {
            self.ensure_dribble(c);
        } else {
            self.emit(c, Dir::Req);
        }
    }

    /// Puts every currently sendable segment of `c`'s `dir` stream on
    /// the wire and (re)arms the retransmission timer.
    fn emit(&mut self, c: usize, dir: Dir) {
        loop {
            let seg = match dir {
                Dir::Req => self.clients[c].req_tx.next_segment(),
                Dir::Resp => self.clients[c].resp_tx.next_segment(),
            };
            let Some((seq, len)) = seg else { break };
            self.launch(c, dir, seq, len);
        }
        self.arm_rto(c, dir);
    }

    fn arm_rto(&mut self, c: usize, dir: Dir) {
        let rto = self.rto_us();
        let tx = match dir {
            Dir::Req => &mut self.clients[c].req_tx,
            Dir::Resp => &mut self.clients[c].resp_tx,
        };
        if tx.in_flight() == 0 {
            tx.disarm();
            return;
        }
        let epoch = tx.arm();
        self.q.schedule_after(us(rto), Ev::Rto { c, dir, epoch });
    }

    fn rto_us(&self) -> u64 {
        (2 * self.cfg.rtt_us + self.cfg.jitter_us).max(8 * self.cfg.tick_us)
    }

    /// One segment enters the wire: loss, duplication, and jitter are
    /// decided here, delivery is a scheduled [`Ev::Seg`].
    fn launch(&mut self, c: usize, dir: Dir, seq: u64, len: u64) {
        self.wire.segments += 1;
        let owd = self.cfg.rtt_us / 2;
        if self.faults.chance(self.cfg.loss) {
            self.wire.lost += 1;
        } else {
            let mut delay = owd;
            if self.cfg.jitter_us > 0 && self.faults.chance(self.cfg.reorder) {
                self.wire.reordered += 1;
                delay += self.faults.next_below(self.cfg.jitter_us + 1);
            }
            self.q.schedule_after(us(delay), Ev::Seg { c, dir, seq, len });
        }
        if self.faults.chance(self.cfg.dup) {
            self.wire.duplicated += 1;
            let delay = owd + self.faults.next_below(self.cfg.jitter_us + 1);
            self.q.schedule_after(us(delay), Ev::Seg { c, dir, seq, len });
        }
    }

    /// A cumulative ACK enters the wire back toward the sender.
    fn send_ack(&mut self, c: usize, dir: Dir, ack: u64) {
        self.wire.acks += 1;
        if self.faults.chance(self.cfg.loss) {
            self.wire.acks_lost += 1;
            return;
        }
        let mut delay = self.cfg.rtt_us / 2;
        if self.cfg.jitter_us > 0 && self.faults.chance(self.cfg.reorder) {
            delay += self.faults.next_below(self.cfg.jitter_us + 1);
        }
        self.q.schedule_after(us(delay), Ev::Ack { c, dir, ack });
    }

    fn on_segment(&mut self, c: usize, dir: Dir, seq: u64, len: u64) {
        match dir {
            Dir::Req => self.on_request_segment(c, seq, len),
            Dir::Resp => self.on_response_segment(c, seq, len),
        }
    }

    /// Request bytes arrive at the server: through the real reassembly
    /// queue, then whatever became in-order is delivered to the kernel
    /// socket. Delivery to a peer-closed socket is refused by the
    /// kernel — the retransmit-after-peer-close case — and the wire
    /// absorbs the refusal.
    fn on_request_segment(&mut self, c: usize, seq: u64, len: u64) {
        let (s, idx) = (self.clients[c].shard, self.clients[c].idx);
        let end = (seq + len) as usize;
        if end > self.clients[c].req_stream.len() {
            self.violations
                .push(format!("client {c}: request segment past stream end"));
            return;
        }
        let payload = Aggregate::from_bytes(
            &self.pools[s],
            &self.clients[c].req_stream[seq as usize..end],
        );
        self.clients[c].req_rx.on_segment(seq, payload);
        if let Some(agg) = self.clients[c].req_rx.read_available() {
            let pid = self.pids[s];
            let sock = self.servers[s].sock(idx);
            if self.servers[s]
                .kernel_mut()
                .socket_deliver(pid, sock, agg)
                .is_err()
            {
                self.wire.deliveries_rejected += 1;
            }
        }
        let ack = self.clients[c].req_rx.next_seq();
        self.send_ack(c, Dir::Req, ack);
    }

    /// Response-pattern bytes arrive at the client: through the
    /// client-side reassembly queue; every in-order byte is verified
    /// against the pattern stream, consumption drives the cumulative
    /// ACK (paced, for slowloris clients).
    fn on_response_segment(&mut self, c: usize, seq: u64, len: u64) {
        if !self.clients[c].alive {
            return;
        }
        let key = self.clients[c].key;
        let bytes: Vec<u8> = (seq..seq + len).map(|s| pattern_byte(key, s)).collect();
        let payload = Aggregate::from_bytes(&self.pools[self.clients[c].shard], &bytes);
        self.clients[c].resp_rx.on_segment(seq, payload);
        if let Some(agg) = self.clients[c].resp_rx.read_available() {
            let got = agg.to_vec();
            let base = self.clients[c].resp_read;
            for (off, b) in got.iter().enumerate() {
                if *b != pattern_byte(key, base + off as u64) {
                    self.violations.push(format!(
                        "client {c}: response byte {} corrupted through reassembly",
                        base + off as u64
                    ));
                    break;
                }
            }
            self.clients[c].resp_read += got.len() as u64;
        }
        if let Some(at) = self.clients[c].reset_after {
            if !self.clients[c].reset_pending && self.clients[c].resp_read >= at {
                self.clients[c].reset_pending = true;
                let delay = 1 + self.faults.next_below(self.cfg.rtt_us.max(1));
                self.q.schedule_after(us(delay), Ev::Reset { c });
            }
        }
        if self.clients[c].slow {
            if self.clients[c].resp_consumed >= self.clients[c].resp_read {
                // Nothing left to consume, so no pacing beat will fire —
                // yet a segment arrived (a retransmission, meaning our
                // last ACK was lost). Re-ACK now, like TCP's dup-ACK on
                // every arrival, or the sender rewinds forever.
                let ack = self.clients[c].resp_consumed;
                self.send_ack(c, Dir::Resp, ack);
            } else {
                self.ensure_consume(c);
            }
        } else {
            self.clients[c].resp_consumed = self.clients[c].resp_read;
            let ack = self.clients[c].resp_consumed;
            self.send_ack(c, Dir::Resp, ack);
        }
    }

    fn on_ack(&mut self, c: usize, dir: Dir, ack: u64) {
        match dir {
            Dir::Req => {
                if self.clients[c].req_tx.on_ack(ack) {
                    if self.clients[c].alive && !self.clients[c].slow {
                        self.emit(c, Dir::Req);
                    } else {
                        self.arm_rto(c, Dir::Req);
                    }
                }
            }
            Dir::Resp => {
                if self.clients[c].resp_tx.on_ack(ack) {
                    // The wire acknowledged bytes: free the kernel send
                    // buffer so the server's next poll sees writability.
                    let newly = ack.saturating_sub(self.clients[c].resp_drained);
                    if newly > 0 {
                        let (s, idx) = (self.clients[c].shard, self.clients[c].idx);
                        let pid = self.pids[s];
                        let sock = self.servers[s].sock(idx);
                        // A reset connection's drain is refused by the
                        // kernel (dead peer) — ignored here, the
                        // server-side peer-close check fails the
                        // request on its own.
                        if let Ok(n) =
                            self.servers[s].kernel_mut().socket_drain(pid, sock, newly)
                        {
                            self.clients[c].resp_drained += n;
                            if n != newly {
                                self.violations.push(format!(
                                    "client {c}: wire acked {newly} bytes but only \
                                     {n} were in the send buffer"
                                ));
                            }
                        }
                    }
                    self.emit(c, Dir::Resp);
                }
            }
        }
    }

    fn on_rto(&mut self, c: usize, dir: Dir, epoch: u64) {
        let (s, idx) = (self.clients[c].shard, self.clients[c].idx);
        let retired = self.servers[s].conn_done(idx) || !self.clients[c].alive;
        let tx = match dir {
            Dir::Req => &mut self.clients[c].req_tx,
            Dir::Resp => &mut self.clients[c].resp_tx,
        };
        if !tx.timer_live(epoch) {
            return;
        }
        if retired || tx.in_flight() == 0 {
            tx.disarm();
            return;
        }
        self.wire.rto_fires += 1;
        tx.rewind();
        self.emit(c, dir);
    }

    fn on_dribble(&mut self, c: usize) {
        self.clients[c].dribbling = false;
        if !self.clients[c].alive {
            return;
        }
        if let Some((seq, len)) = self.clients[c].req_tx.next_segment_capped(DRIBBLE_BYTES) {
            self.launch(c, Dir::Req, seq, len);
            self.arm_rto(c, Dir::Req);
        }
        self.ensure_dribble(c);
    }

    fn ensure_dribble(&mut self, c: usize) {
        let cl = &mut self.clients[c];
        if cl.dribbling || cl.req_tx.unsent() == 0 {
            return;
        }
        cl.dribbling = true;
        let beat = self.cfg.slow_interval_us;
        self.q.schedule_after(us(beat), Ev::Dribble { c });
    }

    fn on_consume(&mut self, c: usize) {
        self.clients[c].consuming = false;
        if !self.clients[c].alive {
            return;
        }
        let target = self.clients[c].resp_read;
        if self.clients[c].resp_consumed < target {
            let next = (self.clients[c].resp_consumed + self.cfg.slow_chunk).min(target);
            self.clients[c].resp_consumed = next;
            self.send_ack(c, Dir::Resp, next);
        }
        if self.clients[c].resp_consumed < self.clients[c].resp_read {
            self.ensure_consume(c);
        }
    }

    fn ensure_consume(&mut self, c: usize) {
        let cl = &mut self.clients[c];
        if cl.consuming || cl.resp_consumed >= cl.resp_read {
            return;
        }
        cl.consuming = true;
        let beat = self.cfg.slow_interval_us;
        self.q.schedule_after(us(beat), Ev::Consume { c });
    }

    /// The client tears the connection down (FIN/RST). The server
    /// discovers it through its own paths: `epipe`/`eof` readiness
    /// while parsing or sending, the peer-closed check while draining.
    fn on_reset(&mut self, c: usize) {
        if !self.clients[c].alive {
            return;
        }
        self.clients[c].alive = false;
        self.wire.resets += 1;
        self.clients[c].req_tx.disarm();
        self.clients[c].resp_tx.disarm();
        let (s, idx) = (self.clients[c].shard, self.clients[c].idx);
        let pid = self.pids[s];
        let sock = self.servers[s].sock(idx);
        let _ = self.servers[s].kernel_mut().socket_peer_close(pid, sock);
    }

    /// Queue drained: collect reports, journals, hashes, and run the
    /// end-of-run contract checks.
    fn finish(mut self, cost: CostModel) -> StormReport {
        let sim_time = self.q.now();
        if !self.all_done() {
            self.violations
                .push("run quiesced with live connections".to_string());
        }
        let mut reports = Vec::new();
        let mut kernels = Vec::new();
        for server in self.servers {
            let (report, kernel) = server.into_report();
            reports.push(report);
            kernels.push(kernel);
        }
        let mut journals = Vec::new();
        let mut state_hashes = Vec::new();
        let mut metrics = Vec::new();
        for (s, kernel) in kernels.iter_mut().enumerate() {
            match kernel.take_journal() {
                Some(j) => journals.push(j),
                None => self
                    .violations
                    .push(format!("shard {s}: journal was not recording")),
            }
            state_hashes.push(kernel.state_hash());
            metrics.push(kernel.metrics.clone());
        }
        for (s, report) in reports.iter().enumerate() {
            if report.stats.blocked_io != 0 {
                self.violations.push(format!(
                    "shard {s}: blocked_io = {} (readiness discipline broken)",
                    report.stats.blocked_io
                ));
            }
        }
        // Pin hygiene: every transmission pin must be back at zero —
        // failed and reset connections included. And cache-vs-store
        // consistency: whatever the wire did to PUT bodies (loss,
        // duplication, reordering, mid-body resets), a cached entry
        // must hold exactly the authoritative bytes — a torn or
        // misassembled upload in the cache is corruption, dirty or not
        // (dirty entries match too: the install writes the store image
        // in the same step). Authority is the file's *home* shard's
        // store: only the home ever writes a file, so a non-home
        // shard's local store is a creation-time seed, while its cache
        // replicas track the home through the write-invalidate
        // broadcast.
        for (s, kernel) in kernels.iter().enumerate() {
            for f in 0..self.cfg.files {
                let Some(file) = kernel.store.lookup(&format!("/f{f}")) else {
                    continue;
                };
                let key = CacheKey::whole(file);
                let pins = kernel.cache.pins(&key);
                if pins != 0 {
                    self.violations
                        .push(format!("shard {s}: /f{f} leaked {pins} cache pins"));
                }
                let Some(agg) = kernel.cache.peek(&key) else {
                    continue;
                };
                let home = iolite_fs::home_shard(file, kernels.len());
                let truth = &kernels[home].store;
                let store_len = truth.len(file).unwrap_or(0);
                let cached = agg.to_vec();
                let stored = truth.read(file, 0, store_len).unwrap_or_default();
                if cached != stored {
                    self.violations.push(format!(
                        "shard {s}: /f{f} cache entry ({} bytes) diverges from \
                         home shard {home}'s store image ({} bytes)",
                        cached.len(),
                        stored.len()
                    ));
                }
            }
        }
        StormReport {
            reports,
            kernels,
            journals,
            state_hashes,
            metrics,
            conn_counts: self.conn_map.iter().map(Vec::len).collect(),
            wire: self.wire,
            violations: self.violations,
            sim_time,
            cost,
        }
    }
}

/// Runs `seeds` through `mk`, returning the first seed whose run
/// reports violations (with their descriptions) — the campaign driver
/// CI uses; a failing seed is the minimized reproducer to land in
/// `tests/storm_regressions.rs`.
///
/// # Errors
///
/// The failing `(seed, violations)` pair, if any.
pub fn campaign(
    mk: impl Fn(u64) -> StormConfig,
    seeds: impl IntoIterator<Item = u64>,
) -> Result<(), (u64, Vec<String>)> {
    for seed in seeds {
        let report = run_storm(&mk(seed));
        if !report.violations.is_empty() {
            return Err((seed, report.violations));
        }
        if let Err(e) = report.verify_replay() {
            return Err((seed, vec![e]));
        }
    }
    Ok(())
}

#![warn(missing_docs)]
//! # iolite-storm: deterministic whole-system fault storms
//!
//! The rest of the workspace tests the serving path from the inside —
//! unit properties on the reassembly queue, replay equivalence on the
//! journal, scripted event-loop runs over an ideal wire. This crate
//! attacks it from the outside: the **real** [`EventLoopServer`]
//! (single-shard and sharded), with its real kernel, cache, checksum
//! cache, and readiness discipline, is driven over an **adversarial
//! TCP wire** on simulated time. Segments are lost, duplicated, and
//! reordered; clients dribble bytes slowloris-style, reset mid-response,
//! and churn; retransmission timers fire and go-back-N floods the
//! reassembly queue with overlapping duplicates.
//!
//! The contract is the paper's (§5.7 extended): under any such storm
//! the server must produce byte-identical responses with an identical
//! checksum-cache profile to a clean sequential run, never block on
//! I/O, never leak a buffer pin, and the whole run must be a pure
//! function of the [`StormConfig`] — same seed, same everything, down
//! to the kernel `state_hash` and [`Metrics`](iolite_core::Metrics).
//!
//! # Architecture map
//!
//! ```text
//!                         ┌────────────────────────────────────────┐
//!                         │      run::Storm (the engine)           │
//!   StormConfig ──plan()──▶  corpus, scripts, roles, conn ids      │
//!        │                │                                        │
//!        │   SimRng fork(4): per-segment fault coin flips          │
//!        ▼                │                                        │
//!   EventQueue ◀──────────┤  Tick ─ tick every shard, pump fabric, │
//!   (one clock,           │         harvest completions/bytes      │
//!    FIFO ties)           │  Seg ──▶ TcpReceiver reassembly        │
//!        │                │     Req: socket_deliver → parser       │
//!        │                │     Resp: verify pattern bytes         │
//!        │                │  Ack ──▶ WireSender window slides;     │
//!        │                │     Resp acks → socket_drain           │
//!        │                │  Rto ──▶ go-back-N rewind + resend     │
//!        │                │  Dribble/Consume ─ slowloris pacing    │
//!        │                │  Reset ─ socket_peer_close mid-stream  │
//!        └────────────────┴────────────────────────────────────────┘
//!              per client, per direction:
//!        WireSender (seq-space window, epoch-guarded RTO)
//!              │ segments              ▲ cumulative ACKs
//!              ▼                       │
//!        TcpReceiver (the real iolite-net reorder queue)
//! ```
//!
//! Layering: the wire model ([`WireSender`]) holds **no payloads and no
//! clocks** — request bytes live in one append-only stream per client,
//! response bytes are a deterministic pattern keyed by (connection,
//! offset), and all timing flows through `iolite-sim`'s
//! [`EventQueue`](iolite_sim::EventQueue).
//! The server is in [`external_wire`] mode: the harness plays the
//! remote peer for every socket, so bytes reach the kernel only
//! through `socket_deliver` (after reassembly) and leave its send
//! buffer only through `socket_drain` (as simulated ACKs arrive).
//! Because both are journaled [`Command`]s, a storm run — faults and
//! all — **replays exactly** through the pure core.
//!
//! Failure handling: [`run_storm`] records contract violations
//! (pattern corruption, drain shortfalls, pin leaks, `blocked_io`,
//! wedged runs) in [`StormReport::violations`]; [`campaign`] sweeps
//! seeds and returns the first failing seed, which lands verbatim in
//! `tests/storm_regressions.rs` as a permanent reproducer.
//!
//! [`EventLoopServer`]: iolite_http::EventLoopServer
//! [`external_wire`]: iolite_http::EventLoopConfig::external_wire
//! [`Command`]: iolite_core::Command

pub mod config;
pub mod run;
pub mod wire;

pub use config::StormConfig;
pub use run::{campaign, pattern_byte, plan, run_storm, StormPlan, StormReport, WireStats};
pub use wire::WireSender;

//! Sliding-window sender bookkeeping for the adversarial wire.
//!
//! One [`WireSender`] tracks one direction of one connection's byte
//! stream in sequence space: which bytes exist (`offered`), which are
//! on the wire (`next` − `acked` in flight), and which the peer has
//! cumulatively acknowledged. Loss recovery is go-back-N: when a
//! retransmission timer fires, [`WireSender::rewind`] resets the send
//! cursor to the last cumulative ACK and the unacknowledged window goes
//! out again. The receiver side is the real
//! [`iolite_net::TcpReceiver`] reassembly queue — duplicates and
//! overlaps created by retransmission are *its* problem, which is
//! exactly the point.
//!
//! The struct holds no payloads and no clocks: payload bytes are
//! regenerated from the stream position at delivery time, and all
//! timing lives in the storm's event queue. Retransmission timers are
//! guarded by an epoch counter ([`WireSender::arm`]) so a superseded
//! timer event is recognized as stale and ignored instead of needing
//! queue surgery.

/// One direction of one connection over the adversarial wire.
#[derive(Debug, Clone)]
pub struct WireSender {
    mss: u64,
    window: u64,
    offered: u64,
    next: u64,
    acked: u64,
    epoch: u64,
}

impl WireSender {
    /// A sender with segment size `mss` and flight-size cap `window`
    /// (both in bytes).
    ///
    /// # Panics
    ///
    /// Panics if `mss` or `window` is zero.
    pub fn new(mss: u64, window: u64) -> WireSender {
        assert!(mss > 0 && window > 0, "degenerate wire");
        WireSender {
            mss,
            window,
            offered: 0,
            next: 0,
            acked: 0,
            epoch: 0,
        }
    }

    /// Extends the stream: bytes `[0, total)` now exist. Monotone —
    /// offering less than before is ignored.
    pub fn offer(&mut self, total: u64) {
        self.offered = self.offered.max(total);
    }

    /// Total bytes offered so far.
    pub fn offered(&self) -> u64 {
        self.offered
    }

    /// Cumulative ACK processing; returns `true` on progress (the
    /// caller then re-arms the retransmission timer and may emit more).
    pub fn on_ack(&mut self, ack: u64) -> bool {
        if ack > self.acked {
            self.acked = ack.min(self.offered);
            // ACKs are cumulative: anything the cursor already passed
            // stays passed, but a go-back-N rewind below the new ack
            // would re-send acknowledged bytes forever.
            self.next = self.next.max(self.acked);
            true
        } else {
            false
        }
    }

    /// The next segment to put on the wire, `(seq, len)`, advancing the
    /// cursor; `None` when the window is full or nothing is unsent.
    pub fn next_segment(&mut self) -> Option<(u64, u64)> {
        if self.next >= self.offered || self.in_flight() >= self.window {
            return None;
        }
        let len = self
            .mss
            .min(self.offered - self.next)
            .min(self.window - self.in_flight());
        let seq = self.next;
        self.next += len;
        Some((seq, len))
    }

    /// Like [`next_segment`](Self::next_segment) with the segment size
    /// capped at `max` — slowloris dribble uses this to put single
    /// bytes on the wire.
    pub fn next_segment_capped(&mut self, max: u64) -> Option<(u64, u64)> {
        if max == 0 || self.next >= self.offered || self.in_flight() >= self.window {
            return None;
        }
        let len = self
            .mss
            .min(max)
            .min(self.offered - self.next)
            .min(self.window - self.in_flight());
        let seq = self.next;
        self.next += len;
        Some((seq, len))
    }

    /// Go-back-N: the retransmission timer fired, so the send cursor
    /// rewinds to the last cumulative ACK and the whole unacknowledged
    /// window is re-sent.
    pub fn rewind(&mut self) {
        self.next = self.acked;
    }

    /// Bytes on the wire (sent past the last cumulative ACK).
    pub fn in_flight(&self) -> u64 {
        self.next - self.acked
    }

    /// Cumulative bytes acknowledged.
    pub fn acked(&self) -> u64 {
        self.acked
    }

    /// Offered bytes the cursor has not yet put on the wire.
    pub fn unsent(&self) -> u64 {
        self.offered - self.next
    }

    /// Whether every offered byte has been acknowledged.
    pub fn done(&self) -> bool {
        self.acked == self.offered
    }

    /// Arms (or re-arms) the retransmission timer: returns the new
    /// epoch to stamp on the scheduled timer event. Any previously
    /// scheduled timer becomes stale.
    pub fn arm(&mut self) -> u64 {
        self.epoch += 1;
        self.epoch
    }

    /// Whether a timer event stamped `epoch` is the live one.
    pub fn timer_live(&self, epoch: u64) -> bool {
        self.epoch == epoch
    }

    /// Invalidates any outstanding timer (connection retired).
    pub fn disarm(&mut self) {
        self.epoch += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segments_respect_mss_window_and_offer() {
        let mut tx = WireSender::new(100, 250);
        tx.offer(1000);
        assert_eq!(tx.next_segment(), Some((0, 100)));
        assert_eq!(tx.next_segment(), Some((100, 100)));
        // Window has 50 bytes left: the third segment is clipped.
        assert_eq!(tx.next_segment(), Some((200, 50)));
        assert_eq!(tx.next_segment(), None, "window full");
        assert!(tx.on_ack(100));
        assert_eq!(tx.next_segment(), Some((250, 100)), "window slid");
    }

    #[test]
    fn rewind_resends_the_unacked_window() {
        let mut tx = WireSender::new(100, 1000);
        tx.offer(300);
        while tx.next_segment().is_some() {}
        assert!(tx.on_ack(100));
        tx.rewind();
        assert_eq!(tx.next_segment(), Some((100, 100)), "go-back-N");
        assert_eq!(tx.next_segment(), Some((200, 100)));
        assert_eq!(tx.next_segment(), None, "nothing new to send");
        assert!(tx.on_ack(300));
        assert!(tx.done());
    }

    #[test]
    fn stale_acks_and_stale_timers_are_ignored() {
        let mut tx = WireSender::new(10, 100);
        tx.offer(50);
        while tx.next_segment().is_some() {}
        assert!(tx.on_ack(30));
        assert!(!tx.on_ack(30), "duplicate ACK is not progress");
        assert!(!tx.on_ack(10), "old ACK is not progress");
        let e1 = tx.arm();
        let e2 = tx.arm();
        assert!(!tx.timer_live(e1), "superseded timer is stale");
        assert!(tx.timer_live(e2));
        tx.disarm();
        assert!(!tx.timer_live(e2));
    }

    #[test]
    fn ack_beyond_cursor_drags_the_cursor() {
        // A retransmitted-then-rewound sender can see an ACK for bytes
        // its cursor hasn't re-sent yet (the original flight arrived
        // late); the cursor must never fall below the ACK.
        let mut tx = WireSender::new(10, 100);
        tx.offer(40);
        while tx.next_segment().is_some() {}
        tx.rewind();
        assert!(tx.on_ack(40));
        assert_eq!(tx.in_flight(), 0);
        assert_eq!(tx.next_segment(), None);
        assert!(tx.done());
    }

    #[test]
    fn dribble_caps_segment_length() {
        let mut tx = WireSender::new(1460, 10_000);
        tx.offer(10);
        assert_eq!(tx.next_segment_capped(3), Some((0, 3)));
        assert_eq!(tx.next_segment_capped(3), Some((3, 3)));
        assert_eq!(tx.next_segment_capped(100), Some((6, 4)));
        assert_eq!(tx.next_segment_capped(3), None);
    }
}

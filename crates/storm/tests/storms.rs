//! Storm campaigns across the nasty corners of the config space. Each
//! sweep runs the full contract check (no violations, exact journal
//! replay) over a band of seeds; a failure names the seed, which then
//! gets pinned in the workspace-level `tests/storm_regressions.rs`.

use iolite_storm::{campaign, run_storm, StormConfig};

fn sweep(name: &str, mk: impl Fn(u64) -> StormConfig, seeds: std::ops::Range<u64>) {
    if let Err((seed, violations)) = campaign(mk, seeds) {
        panic!("{name}: seed {seed}\n{}", violations.join("\n"));
    }
}

#[test]
fn presets() {
    sweep("hostile", StormConfig::hostile, 0..40);
    sweep("chaos", StormConfig::chaos, 0..40);
    sweep("calm", StormConfig::calm, 0..10);
}

#[test]
fn heavy_loss_and_reordering() {
    sweep(
        "heavy-loss",
        |s| StormConfig {
            loss: 0.08,
            dup: 0.05,
            reorder: 0.5,
            ..StormConfig::hostile(s)
        },
        0..20,
    );
}

#[test]
fn all_slowloris_with_tiny_consume_chunks() {
    sweep(
        "all-slowloris",
        |s| StormConfig {
            slowloris: 1.0,
            slow_chunk: 64,
            ..StormConfig::hostile(s)
        },
        0..15,
    );
}

#[test]
fn single_segment_wire_window() {
    sweep(
        "tiny-window",
        |s| StormConfig {
            wire_window: 1460,
            loss: 0.03,
            ..StormConfig::hostile(s)
        },
        0..15,
    );
}

#[test]
fn wan_rtt_with_loss() {
    sweep(
        "wan",
        |s| StormConfig {
            rtt_us: 100_000,
            jitter_us: 40_000,
            loss: 0.02,
            ..StormConfig::hostile(s)
        },
        0..8,
    );
}

#[test]
fn sharded_chaos_fleet() {
    sweep(
        "4-shard-chaos",
        |s| StormConfig {
            shards: 4,
            clients: 12,
            ..StormConfig::chaos(s)
        },
        0..20,
    );
    sweep(
        "2-shard-everything",
        |s| StormConfig {
            shards: 2,
            clients: 16,
            requests_per_client: 3,
            loss: 0.05,
            dup: 0.05,
            reorder: 0.5,
            slowloris: 0.5,
            reset: 0.4,
            churn: 0.5,
            ..StormConfig::chaos(s)
        },
        0..20,
    );
}

/// Mid-response resets while retransmissions are still in flight must
/// exercise the retransmit-after-peer-close path: the kernel refuses
/// the late delivery, nothing panics, nothing leaks.
#[test]
fn retransmit_after_peer_close_is_refused_not_fatal() {
    let mut rejected = 0;
    for seed in 0..60 {
        let cfg = StormConfig {
            reset: 0.6,
            loss: 0.05,
            ..StormConfig::chaos(seed)
        };
        let report = run_storm(&cfg);
        assert_eq!(report.violations, Vec::<String>::new(), "seed {seed}");
        rejected += report.wire.deliveries_rejected;
    }
    assert!(
        rejected > 0,
        "sweep never hit the retransmit-after-peer-close path"
    );
}

//! The gcc compiler chain (§5.8).
//!
//! "For gcc, rather than modify the entire program, we simply replaced
//! the C stdio library with a version that uses IO-Lite for
//! communication over pipes. The C preprocessor's output, the compiler's
//! input and output, and the assembler's input all use the C stdio
//! library and were converted merely by relinking."
//!
//! Stages: driver → cpp → cc1 → as, connected by pipes. The
//! transformations are real byte transforms (so data integrity is
//! testable end-to-end) with compute rates that dwarf I/O — the reason
//! the paper observes *no* benefit for gcc: "(1) the computation time
//! dominates the cost of communication and (2) only the interprocess
//! data copying has been eliminated."

use iolite_buf::Aggregate;
use iolite_core::{short_ok, Charge, CostCategory, IolError, Kernel, Pid};
use iolite_fs::FileId;
use iolite_sim::SimTime;

use crate::costs::AppCosts;
use crate::ApiMode;

/// The compiler pipeline.
pub struct CompilePipeline {
    /// The driver process.
    pub driver: Pid,
    cpp: Pid,
    cc1: Pid,
    asm: Pid,
}

/// cpp: "macro expansion" — every 64-byte block is emitted twice
/// (deterministic, reversible enough to test).
fn cpp_transform(input: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(input.len() * 2);
    for block in input.chunks(64) {
        out.extend_from_slice(block);
        out.extend_from_slice(block);
    }
    out
}

/// cc1: "compilation" — keep ~3 of every 4 bytes, XOR-mixed.
fn cc1_transform(input: &[u8]) -> Vec<u8> {
    input
        .iter()
        .enumerate()
        .filter(|(i, _)| i % 4 != 3)
        .map(|(i, &b)| b ^ (i as u8))
        .collect()
}

/// as: "assembly" — pack pairs of bytes into one.
fn as_transform(input: &[u8]) -> Vec<u8> {
    input
        .chunks(2)
        .map(|c| c.iter().fold(0u8, |a, &b| a.wrapping_add(b)))
        .collect()
}

impl CompilePipeline {
    /// Spawns the four compiler processes.
    pub fn new(kernel: &mut Kernel) -> Self {
        CompilePipeline {
            driver: kernel.spawn("gcc-driver"),
            cpp: kernel.spawn("cpp"),
            cc1: kernel.spawn("cc1"),
            asm: kernel.spawn("as"),
        }
    }

    /// Compiles one source file through the full chain, returning the
    /// "object code" bytes and the simulated runtime.
    pub fn compile(
        &self,
        kernel: &mut Kernel,
        source: FileId,
        mode: ApiMode,
        costs: &AppCosts,
    ) -> (Vec<u8>, SimTime) {
        let start = kernel.now();
        // Driver opens and reads the source through its descriptor.
        let src_fd = kernel.open_file(self.driver, source);
        let len = kernel.fd_len(self.driver, src_fd).unwrap_or(0);
        let source_bytes = match mode {
            ApiMode::Posix => {
                let (bytes, out) = kernel
                    .posix_read_fd(self.driver, src_fd, len)
                    .expect("open source");
                kernel.charge(CostCategory::Copy, out.charge);
                kernel.advance(out.disk_time);
                bytes
            }
            ApiMode::IoLite => {
                let (agg, out) = kernel
                    .iol_read_fd(self.driver, src_fd, len)
                    .expect("open source");
                kernel.charge(CostCategory::PageMap, out.charge);
                kernel.advance(out.disk_time);
                agg.to_vec()
            }
        };
        kernel.close_fd(self.driver, src_fd).expect("close source");
        // Stage 1: cpp.
        let expanded = self.stage(kernel, self.driver, self.cpp, &source_bytes, mode, |b| {
            cpp_transform(b)
        });
        kernel.charge(
            CostCategory::AppCompute,
            Charge::us(source_bytes.len() as f64 * costs.cpp_ns_per_byte / 1000.0),
        );
        // Stage 2: cc1.
        let assembly = self.stage(kernel, self.cpp, self.cc1, &expanded, mode, |b| {
            cc1_transform(b)
        });
        kernel.charge(
            CostCategory::AppCompute,
            Charge::us(expanded.len() as f64 * costs.cc1_ns_per_byte / 1000.0),
        );
        // Stage 3: as.
        let object = self.stage(kernel, self.cc1, self.asm, &assembly, mode, |b| {
            as_transform(b)
        });
        kernel.charge(
            CostCategory::AppCompute,
            Charge::us(assembly.len() as f64 * costs.as_ns_per_byte / 1000.0),
        );
        (object, kernel.now().saturating_sub(start))
    }

    /// Moves `input` from `producer` to `consumer` through a pipe and
    /// applies the consumer's transformation.
    fn stage(
        &self,
        kernel: &mut Kernel,
        producer: Pid,
        consumer: Pid,
        input: &[u8],
        mode: ApiMode,
        transform: impl Fn(&[u8]) -> Vec<u8>,
    ) -> Vec<u8> {
        let (wfd, rfd) = kernel.pipe_between(producer, consumer, mode.pipe_mode());
        let pool = kernel.process(producer).pool().clone();
        let agg = Aggregate::from_bytes(&pool, input);
        let mut received = Vec::with_capacity(input.len());
        let mut sent = 0u64;
        while sent < agg.len() {
            let rest = agg.range(sent, agg.len() - sent).expect("in range");
            let (accepted, wout) = short_ok(kernel.iol_write_fd(producer, wfd, &rest))
                .expect("consumer holds the read end");
            kernel.charge(CostCategory::Copy, wout.charge);
            sent += accepted;
            match kernel.iol_read_fd(consumer, rfd, u64::MAX) {
                Ok((chunk, rout)) => {
                    kernel.charge(CostCategory::Copy, rout.charge);
                    // Consumer copy into its own contiguous working
                    // memory: one copy per byte, no intermediate
                    // materialization.
                    for run in chunk.chunks() {
                        received.extend_from_slice(run);
                    }
                }
                Err(IolError::WouldBlock { outcome }) => {
                    kernel.charge(CostCategory::Syscall, outcome.charge);
                }
                Err(e) => panic!("stage read failed: {e}"),
            }
            if sent < agg.len() {
                kernel.charge(CostCategory::ContextSwitch, kernel.cost.context_switches(2));
                kernel.context_switch(2);
            }
        }
        kernel.close_fd(producer, wfd).expect("close stage write end");
        kernel.close_fd(consumer, rfd).expect("close stage read end");
        transform(&received)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iolite_core::CostModel;

    fn setup(len: u64) -> (Kernel, CompilePipeline, FileId) {
        let mut k = Kernel::new(CostModel::pentium_ii_333());
        let pipeline = CompilePipeline::new(&mut k);
        let f = k.create_synthetic_file("/src/main.c", len, 77);
        (k, pipeline, f)
    }

    #[test]
    fn transforms_are_deterministic_and_sized() {
        let input: Vec<u8> = (0..1000u32).map(|i| i as u8).collect();
        let e = cpp_transform(&input);
        assert_eq!(e.len(), 2000);
        let a = cc1_transform(&e);
        assert_eq!(a.len(), 1500);
        let o = as_transform(&a);
        assert_eq!(o.len(), 750);
        assert_eq!(as_transform(&cc1_transform(&cpp_transform(&input))), o);
    }

    #[test]
    fn both_modes_produce_identical_object_code() {
        let (mut k, pipeline, f) = setup(50_000);
        let costs = AppCosts::calibrated();
        let (a, _) = pipeline.compile(&mut k, f, ApiMode::Posix, &costs);
        let (b, _) = pipeline.compile(&mut k, f, ApiMode::IoLite, &costs);
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }

    #[test]
    fn gcc_shows_no_meaningful_benefit() {
        // Fig. 13: compute dominates; IO-Lite changes gcc by ~0%.
        let (mut k, pipeline, f) = setup(167_000);
        let costs = AppCosts::calibrated();
        pipeline.compile(&mut k, f, ApiMode::Posix, &costs);
        k.reset_clock();
        let (_, posix_t) = pipeline.compile(&mut k, f, ApiMode::Posix, &costs);
        k.reset_clock();
        let (_, iolite_t) = pipeline.compile(&mut k, f, ApiMode::IoLite, &costs);
        let delta = (posix_t.as_secs() - iolite_t.as_secs()).abs() / posix_t.as_secs();
        assert!(delta < 0.05, "gcc delta must be ~0: {delta}");
    }
}

//! `permute | wc` (§5.8).
//!
//! "Permute generates all possible permutations of four-character words
//! in a 40-character string. Its output (10!*40 = 145,152,000 bytes) is
//! piped into the wc program." Producer/consumer over a pipe: with
//! IO-Lite, "not only does IO-Lite eliminate data copying between the
//! processes, but it also avoids the VM map operations affecting the wc
//! example" — buffer recycling keeps the steady state at shared-memory
//! cost.

use iolite_buf::Aggregate;
use iolite_core::{short_ok, Charge, CostCategory, IolError, Kernel, Pid};
use iolite_sim::SimTime;

use crate::costs::AppCosts;
use crate::wc::WcCounts;
use crate::ApiMode;

/// Generates all permutations of `n` four-character words ("aaa ",
/// "bbb ", ...) via Heap's algorithm, streaming each 4n-byte string to
/// `emit`.
fn generate_permutations(n: usize, mut emit: impl FnMut(&[u8])) {
    assert!((1..=12).contains(&n), "n! strings must stay enumerable");
    let mut words: Vec<[u8; 4]> = (0..n)
        .map(|i| {
            let c = b'a' + (i as u8);
            [c, c, c, b' ']
        })
        .collect();
    let mut line = vec![0u8; 4 * n];
    let mut output = |words: &[[u8; 4]]| {
        for (i, w) in words.iter().enumerate() {
            line[i * 4..i * 4 + 4].copy_from_slice(w);
        }
        emit(&line);
    };
    // Heap's algorithm, iterative form.
    let mut c = vec![0usize; n];
    output(&words);
    let mut i = 0;
    while i < n {
        if c[i] < i {
            if i % 2 == 0 {
                words.swap(0, i);
            } else {
                words.swap(c[i], i);
            }
            output(&words);
            c[i] += 1;
            i = 0;
        } else {
            c[i] = 0;
            i += 1;
        }
    }
}

/// Counts words/lines/bytes in a chunk (shared with `wc`; permute output
/// has no newlines, only space-separated words).
fn count_chunk(data: &[u8], counts: &mut WcCounts, in_word: &mut bool) {
    for &b in data {
        counts.bytes += 1;
        if b == b'\n' {
            counts.lines += 1;
        }
        let is_space = b.is_ascii_whitespace();
        if *in_word && is_space {
            *in_word = false;
        } else if !*in_word && !is_space {
            *in_word = true;
            counts.words += 1;
        }
    }
}

/// Runs `permute n | wc`, returning wc's (real) counts and the simulated
/// runtime. The paper's configuration is `n = 10`.
pub fn run_permute_wc(
    kernel: &mut Kernel,
    perm_pid: Pid,
    wc_pid: Pid,
    n: usize,
    mode: ApiMode,
    costs: &AppCosts,
) -> (WcCounts, SimTime) {
    let start = kernel.now();
    let (wfd, rfd) = kernel.pipe_between(perm_pid, wc_pid, mode.pipe_mode());
    let pool = kernel.process(perm_pid).pool().clone();
    let mut counts = WcCounts::default();
    let mut in_word = false;
    // Stage buffer: permute accumulates ~64KB, then pushes through the
    // pipe while wc drains.
    let mut stage: Vec<u8> = Vec::with_capacity(96 * 1024);
    let mut flush = |kernel: &mut Kernel, stage: &mut Vec<u8>| {
        if stage.is_empty() {
            return;
        }
        // Generation cost for these bytes.
        kernel.charge(
            CostCategory::AppCompute,
            Charge::us(stage.len() as f64 * costs.permute_gen_ns_per_byte / 1000.0),
        );
        let agg = Aggregate::from_bytes(&pool, stage);
        let mut sent = 0u64;
        while sent < agg.len() {
            let rest = agg.range(sent, agg.len() - sent).expect("in range");
            let (accepted, wout) = short_ok(kernel.iol_write_fd(perm_pid, wfd, &rest))
                .expect("wc holds the read end");
            kernel.charge(CostCategory::Copy, wout.charge);
            sent += accepted;
            match kernel.iol_read_fd(wc_pid, rfd, u64::MAX) {
                Ok((chunk, rout)) => {
                    kernel.charge(CostCategory::Copy, rout.charge);
                    kernel.charge(
                        CostCategory::AppCompute,
                        Charge::us(chunk.len() as f64 * costs.wc_scan_ns_per_byte / 1000.0),
                    );
                    for run in chunk.chunks() {
                        count_chunk(run, &mut counts, &mut in_word);
                    }
                }
                Err(IolError::WouldBlock { outcome }) => {
                    kernel.charge(CostCategory::Syscall, outcome.charge);
                }
                Err(e) => panic!("wc read failed: {e}"),
            }
            if sent < agg.len() {
                kernel.charge(CostCategory::ContextSwitch, kernel.cost.context_switches(2));
                kernel.context_switch(2);
            }
        }
        stage.clear();
    };
    {
        let mut emit = |line: &[u8]| {
            stage.extend_from_slice(line);
            if stage.len() >= 64 * 1024 {
                flush(kernel, &mut stage);
            }
        };
        generate_permutations(n, &mut emit);
    }
    flush(kernel, &mut stage);
    kernel.close_fd(perm_pid, wfd).expect("close pipe write end");
    kernel.close_fd(wc_pid, rfd).expect("close pipe read end");
    (counts, kernel.now().saturating_sub(start))
}

#[cfg(test)]
mod tests {
    use super::*;
    use iolite_core::CostModel;

    fn factorial(n: u64) -> u64 {
        (1..=n).product()
    }

    #[test]
    fn permutation_count_is_exact() {
        let mut seen = std::collections::BTreeSet::new();
        let mut count = 0u64;
        generate_permutations(5, |line| {
            count += 1;
            seen.insert(line.to_vec());
        });
        assert_eq!(count, factorial(5));
        // All distinct.
        assert_eq!(seen.len() as u64, factorial(5));
        // Each line is 4n bytes.
        assert!(seen.iter().all(|l| l.len() == 20));
    }

    #[test]
    fn wc_sees_the_full_stream() {
        let mut k = Kernel::new(CostModel::pentium_ii_333());
        let p = k.spawn("permute");
        let w = k.spawn("wc");
        let n = 6;
        let (counts, _) = run_permute_wc(&mut k, p, w, n, ApiMode::IoLite, &AppCosts::calibrated());
        let perms = factorial(n as u64);
        assert_eq!(counts.bytes, perms * 4 * n as u64);
        // Each permutation contributes n space-terminated words.
        assert_eq!(counts.words, perms * n as u64);
        assert_eq!(counts.lines, 0);
    }

    #[test]
    fn modes_agree_and_iolite_is_faster() {
        let costs = AppCosts::calibrated();
        let mut k = Kernel::new(CostModel::pentium_ii_333());
        let p = k.spawn("permute");
        let w = k.spawn("wc");
        let (a, posix_t) = run_permute_wc(&mut k, p, w, 7, ApiMode::Posix, &costs);
        k.reset_clock();
        let (b, iolite_t) = run_permute_wc(&mut k, p, w, 7, ApiMode::IoLite, &costs);
        assert_eq!(a, b);
        let reduction = 1.0 - iolite_t.as_secs() / posix_t.as_secs();
        // Fig. 13: 33% (wide tolerance at this reduced scale).
        assert!(
            (0.20..0.45).contains(&reduction),
            "reduction {reduction} (posix {posix_t}, iolite {iolite_t})"
        );
    }
}

//! `wc`: word count over the simulated kernel (§5.8).
//!
//! "Converting it involved replacing UNIX read with IOL_read and
//! iterating through the slices returned in the buffer aggregate."

use iolite_core::{Charge, CostCategory, Kernel, Pid};
use iolite_fs::FileId;
use iolite_sim::SimTime;

use crate::costs::AppCosts;
use crate::ApiMode;

/// The counts `wc` produces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WcCounts {
    /// Newlines.
    pub lines: u64,
    /// Whitespace-separated words.
    pub words: u64,
    /// Bytes.
    pub bytes: u64,
}

/// Counts words in `data`, continuing from `in_word` state across chunk
/// boundaries.
fn count_chunk(data: &[u8], counts: &mut WcCounts, in_word: &mut bool) {
    for &b in data {
        counts.bytes += 1;
        if b == b'\n' {
            counts.lines += 1;
        }
        let is_space = b.is_ascii_whitespace();
        if *in_word && is_space {
            *in_word = false;
        } else if !*in_word && !is_space {
            *in_word = true;
            counts.words += 1;
        }
    }
}

/// Runs `wc` on a file, returning the (real) counts and the simulated
/// runtime. The program opens its own descriptor and reads
/// sequentially, exactly like the real `wc` reading `stdin`-style.
pub fn run_wc(
    kernel: &mut Kernel,
    pid: Pid,
    file: FileId,
    mode: ApiMode,
    costs: &AppCosts,
) -> (WcCounts, SimTime) {
    let start = kernel.now();
    let fd = kernel.open_file(pid, file);
    let len = kernel.fd_len(pid, fd).unwrap_or(0);
    let chunk = 64 * 1024u64;
    let mut counts = WcCounts::default();
    let mut in_word = false;
    let mut offset = 0u64;
    while offset < len {
        let want = chunk.min(len - offset);
        match mode {
            ApiMode::Posix => {
                let (data, out) = kernel.posix_read_fd(pid, fd, want).expect("open file");
                kernel.charge(CostCategory::Copy, out.charge);
                kernel.advance(out.disk_time);
                count_chunk(&data, &mut counts, &mut in_word);
            }
            ApiMode::IoLite => {
                let (agg, out) = kernel.iol_read_fd(pid, fd, want).expect("open file");
                kernel.charge(CostCategory::PageMap, out.charge);
                kernel.advance(out.disk_time);
                // Iterate the byte runs in place: no contiguity needed.
                for run in agg.chunks() {
                    count_chunk(run, &mut counts, &mut in_word);
                }
            }
        }
        kernel.charge(
            CostCategory::AppCompute,
            Charge::us(want as f64 * costs.wc_scan_ns_per_byte / 1000.0),
        );
        offset += want;
    }
    kernel.close_fd(pid, fd).expect("close wc input");
    (counts, kernel.now().saturating_sub(start))
}

#[cfg(test)]
mod tests {
    use super::*;
    use iolite_core::CostModel;

    fn kernel_with(text: &[u8]) -> (Kernel, Pid, FileId) {
        let mut k = Kernel::new(CostModel::pentium_ii_333());
        let pid = k.spawn("wc");
        let f = k.create_file("/data", text);
        (k, pid, f)
    }

    #[test]
    fn counts_match_reference() {
        let text = b"hello world\nthis is  a test\nlast line";
        let (mut k, pid, f) = kernel_with(text);
        let (counts, _) = run_wc(&mut k, pid, f, ApiMode::Posix, &AppCosts::calibrated());
        assert_eq!(counts.lines, 2);
        assert_eq!(counts.words, 8);
        assert_eq!(counts.bytes, text.len() as u64);
    }

    #[test]
    fn both_modes_agree_on_counts() {
        // A file large enough to span many chunks and slices.
        let mut k = Kernel::new(CostModel::pentium_ii_333());
        let pid = k.spawn("wc");
        let f = k.create_synthetic_file("/big", 300_000, 5);
        let costs = AppCosts::calibrated();
        let (a, _) = run_wc(&mut k, pid, f, ApiMode::Posix, &costs);
        let (b, _) = run_wc(&mut k, pid, f, ApiMode::IoLite, &costs);
        assert_eq!(a, b);
    }

    #[test]
    fn iolite_mode_is_faster_on_cached_file() {
        let mut k = Kernel::new(CostModel::pentium_ii_333());
        let pid = k.spawn("wc");
        let f = k.create_synthetic_file("/big", 1_750_000, 5);
        let costs = AppCosts::calibrated();
        // Warm the cache (the paper's wc test reads a cached file).
        run_wc(&mut k, pid, f, ApiMode::Posix, &costs);
        k.reset_clock();
        let (_, posix_t) = run_wc(&mut k, pid, f, ApiMode::Posix, &costs);
        k.reset_clock();
        let (_, iolite_t) = run_wc(&mut k, pid, f, ApiMode::IoLite, &costs);
        let reduction = 1.0 - iolite_t.as_secs() / posix_t.as_secs();
        // Fig. 13: 37% reduction (tolerance for model drift).
        assert!(
            (0.25..0.50).contains(&reduction),
            "reduction {reduction} (posix {posix_t}, iolite {iolite_t})"
        );
    }

    #[test]
    fn word_state_spans_chunk_boundaries() {
        // A word crossing the 64KB read boundary must count once.
        let mut data = vec![b'a'; 64 * 1024 + 10];
        data[5] = b' ';
        let (mut k, pid, f) = kernel_with(&data);
        let (counts, _) = run_wc(&mut k, pid, f, ApiMode::IoLite, &AppCosts::calibrated());
        assert_eq!(counts.words, 2);
    }
}

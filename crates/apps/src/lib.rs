#![warn(missing_docs)]
//! Converted UNIX applications (paper §5.8, Figure 13).
//!
//! The paper ports GNU `cat`, `wc`, `grep`, a `permute` generator, and
//! the gcc compiler chain to the IO-Lite API and measures runtime
//! reductions of 37% (wc), 48% (grep via cat), 33% (permute|wc) and ~0%
//! (gcc). Each application here is implemented twice over the simulated
//! kernel:
//!
//! * **POSIX mode** — `read`/`write` with copy semantics; pipes copy in
//!   and out of the kernel buffer.
//! * **IO-Lite mode** — `IOL_read`/`IOL_write`; aggregates pass through
//!   pipes by reference; `grep` copies only lines that straddle buffer
//!   boundaries into contiguous memory (the paper's one conversion
//!   wrinkle); page-mapping costs appear exactly where the paper says
//!   they are ("the remaining overhead in the IO-Lite case is due to
//!   page mapping").
//!
//! The computations are real — `wc` counts real words, `grep` matches
//! real lines, `permute` emits real permutations — and their per-byte
//! compute costs ([`AppCosts`]) are calibrated so the *conventional*
//! runtimes land near Fig. 13's baselines.

pub mod compile;
pub mod costs;
pub mod grep;
pub mod permute;
pub mod wc;

pub use compile::CompilePipeline;
pub use costs::AppCosts;
pub use grep::{run_cat_grep, GrepResult};
pub use permute::run_permute_wc;
pub use wc::{run_wc, WcCounts};

/// Which I/O API an application run uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ApiMode {
    /// Conventional copying `read`/`write`.
    Posix,
    /// The IO-Lite API (`IOL_read`/`IOL_write`, zero-copy pipes).
    IoLite,
}

impl ApiMode {
    /// The pipe mode this API implies.
    pub fn pipe_mode(self) -> iolite_ipc::PipeMode {
        match self {
            ApiMode::Posix => iolite_ipc::PipeMode::Copy,
            ApiMode::IoLite => iolite_ipc::PipeMode::ZeroCopy,
        }
    }
}

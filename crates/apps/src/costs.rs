//! Per-application compute costs.
//!
//! These constants are the applications' *own* work (scanning, matching,
//! permutation generation, compilation) — everything the I/O system
//! cannot remove. They are calibrated so the conventional-mode runtimes
//! land near Fig. 13's baselines on the paper's machine; the IO-Lite
//! mode then differs only through genuine I/O mechanism deltas.

/// Application compute-rate constants (nanoseconds per byte processed).
#[derive(Debug, Clone, Copy)]
pub struct AppCosts {
    /// `wc`: byte classification and word-boundary detection.
    pub wc_scan_ns_per_byte: f64,
    /// `grep`: line assembly plus pattern matching.
    pub grep_scan_ns_per_byte: f64,
    /// `permute`: permutation generation and formatting.
    pub permute_gen_ns_per_byte: f64,
    /// `cat`: no per-byte compute (pure I/O).
    pub cat_ns_per_byte: f64,
    /// Compiler stages: preprocessing, compilation, assembly. These
    /// dwarf I/O costs — the reason gcc shows no IO-Lite benefit.
    pub cpp_ns_per_byte: f64,
    /// cc1 compute rate.
    pub cc1_ns_per_byte: f64,
    /// as compute rate.
    pub as_ns_per_byte: f64,
}

impl AppCosts {
    /// Calibrated values (see crate docs and EXPERIMENTS.md).
    pub fn calibrated() -> Self {
        AppCosts {
            wc_scan_ns_per_byte: 11.2,
            grep_scan_ns_per_byte: 41.0,
            permute_gen_ns_per_byte: 50.0,
            cat_ns_per_byte: 0.0,
            cpp_ns_per_byte: 2_000.0,
            cc1_ns_per_byte: 12_000.0,
            as_ns_per_byte: 3_000.0,
        }
    }
}

impl Default for AppCosts {
    fn default() -> Self {
        AppCosts::calibrated()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compute_rates_positive_and_ordered() {
        let c = AppCosts::calibrated();
        // Compilation is orders of magnitude more compute-intensive than
        // scanning — the Fig. 13 gcc null-result depends on this.
        assert!(c.cc1_ns_per_byte > 100.0 * c.wc_scan_ns_per_byte);
        assert!(c.grep_scan_ns_per_byte > c.wc_scan_ns_per_byte);
    }
}

//! `cat file | grep pattern` (§5.8).
//!
//! The paper's most I/O-bound pipeline: "IO-Lite is able to eliminate
//! three copies — two due to cat, and one due to grep." Conversion
//! wrinkle reproduced faithfully: "since grep expects all data in a line
//! to be contiguous in memory, lines that were split across IO-Lite
//! buffers were copied into dynamically allocated contiguous memory."

use iolite_buf::Aggregate;
use iolite_core::{short_ok, Charge, CostCategory, IolError, Kernel, Pid};
use iolite_fs::FileId;
use iolite_sim::SimTime;

use crate::costs::AppCosts;
use crate::ApiMode;

/// What `grep` found.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GrepResult {
    /// Lines containing the pattern.
    pub matches: u64,
    /// Total lines seen.
    pub lines: u64,
}

/// Naive substring search (real matching over real bytes).
fn line_matches(line: &[u8], pattern: &[u8]) -> bool {
    if pattern.is_empty() || line.len() < pattern.len() {
        return pattern.is_empty();
    }
    line.windows(pattern.len()).any(|w| w == pattern)
}

/// Grep's incremental state: a carry buffer for partial lines.
struct GrepState {
    pattern: Vec<u8>,
    carry: Vec<u8>,
    result: GrepResult,
    /// Bytes copied to make split lines contiguous (IO-Lite mode).
    split_copied: u64,
}

impl GrepState {
    fn feed_contiguous(&mut self, data: &[u8], charge_splits: bool) {
        let mut start = 0;
        for (i, &b) in data.iter().enumerate() {
            if b == b'\n' {
                if self.carry.is_empty() {
                    self.scan_line(&data[start..i]);
                } else {
                    // The line started in a previous buffer: it was
                    // copied into contiguous memory.
                    let carried = std::mem::take(&mut self.carry);
                    let mut line = carried;
                    line.extend_from_slice(&data[start..i]);
                    if charge_splits {
                        self.split_copied += line.len() as u64;
                    }
                    self.scan_line(&line);
                }
                start = i + 1;
            }
        }
        if start < data.len() {
            self.carry.extend_from_slice(&data[start..]);
        }
    }

    fn scan_line(&mut self, line: &[u8]) {
        self.result.lines += 1;
        if line_matches(line, &self.pattern) {
            self.result.matches += 1;
        }
    }

    fn finish(&mut self) {
        if !self.carry.is_empty() {
            let line = std::mem::take(&mut self.carry);
            self.scan_line(&line);
        }
    }
}

/// Runs `cat file | grep pattern`, returning the (real) match counts
/// and the simulated runtime. The pipe is a kernel pipe addressed by
/// descriptors: cat holds the write end, grep the read end, exactly as
/// the shell would wire them.
pub fn run_cat_grep(
    kernel: &mut Kernel,
    cat_pid: Pid,
    grep_pid: Pid,
    file: FileId,
    pattern: &[u8],
    mode: ApiMode,
    costs: &AppCosts,
) -> (GrepResult, SimTime) {
    let start = kernel.now();
    let (wfd, rfd) = kernel.pipe_between(cat_pid, grep_pid, mode.pipe_mode());
    let in_fd = kernel.open_file(cat_pid, file);
    let len = kernel.fd_len(cat_pid, in_fd).unwrap_or(0);
    let chunk = 64 * 1024u64;
    let mut state = GrepState {
        pattern: pattern.to_vec(),
        carry: Vec::new(),
        result: GrepResult::default(),
        split_copied: 0,
    };
    let scratch = kernel.create_pool(iolite_buf::Acl::with_domain(cat_pid.domain()));

    let mut offset = 0u64;
    while offset < len {
        let want = chunk.min(len - offset);
        // --- cat: read one chunk sequentially off its descriptor ---
        let data: Aggregate = match mode {
            ApiMode::Posix => {
                let (bytes, out) = kernel.posix_read_fd(cat_pid, in_fd, want).expect("open file");
                kernel.charge(CostCategory::Copy, out.charge);
                kernel.advance(out.disk_time);
                Aggregate::from_bytes(&scratch, &bytes)
            }
            ApiMode::IoLite => {
                let (agg, out) = kernel.iol_read_fd(cat_pid, in_fd, want).expect("open file");
                kernel.charge(CostCategory::PageMap, out.charge);
                kernel.advance(out.disk_time);
                agg
            }
        };
        kernel.charge(
            CostCategory::AppCompute,
            Charge::us(want as f64 * costs.cat_ns_per_byte / 1000.0),
        );
        // --- cat writes, grep drains (alternating on one CPU) ---
        let mut sent = 0u64;
        while sent < data.len() {
            let rest = data.range(sent, data.len() - sent).expect("in range");
            let (accepted, wout) = short_ok(kernel.iol_write_fd(cat_pid, wfd, &rest))
                .expect("grep holds the read end");
            kernel.charge(CostCategory::Copy, wout.charge);
            sent += accepted;
            match kernel.iol_read_fd(grep_pid, rfd, u64::MAX) {
                Ok((agg, rout)) => {
                    kernel.charge(CostCategory::Copy, rout.charge);
                    // grep processes what arrived.
                    kernel.charge(
                        CostCategory::AppCompute,
                        Charge::us(agg.len() as f64 * costs.grep_scan_ns_per_byte / 1000.0),
                    );
                    match mode {
                        ApiMode::Posix => {
                            // The copied-out data is contiguous user
                            // memory; the copy itself is already charged
                            // by the pipe, so scan the runs without
                            // re-materializing.
                            for run in agg.chunks() {
                                state.feed_contiguous(run, false);
                            }
                        }
                        ApiMode::IoLite => {
                            // Process run by run; split lines get copied
                            // (and charged below).
                            for run in agg.chunks() {
                                state.feed_contiguous(run, true);
                            }
                        }
                    }
                }
                Err(IolError::WouldBlock { outcome }) => {
                    kernel.charge(CostCategory::Syscall, outcome.charge);
                }
                Err(e) => panic!("grep read failed: {e}"),
            }
            if sent < data.len() {
                // Blocked on a full pipe: producer/consumer switch pair.
                kernel.charge(CostCategory::ContextSwitch, kernel.cost.context_switches(2));
                kernel.context_switch(2);
            }
        }
        offset += want;
    }
    state.finish();
    // Charge the split-line contiguity copies (IO-Lite conversion cost).
    if state.split_copied > 0 {
        let c = kernel.cost.cached_copy(state.split_copied);
        kernel.charge(CostCategory::Copy, c);
        kernel.metrics.bytes_copied += state.split_copied;
    }
    kernel.close_fd(cat_pid, in_fd).expect("close cat input");
    kernel.close_fd(cat_pid, wfd).expect("close pipe write end");
    kernel.close_fd(grep_pid, rfd).expect("close pipe read end");
    (state.result, kernel.now().saturating_sub(start))
}

#[cfg(test)]
mod tests {
    use super::*;
    use iolite_core::CostModel;

    fn setup(text: &[u8]) -> (Kernel, Pid, Pid, FileId) {
        let mut k = Kernel::new(CostModel::pentium_ii_333());
        let cat = k.spawn("cat");
        let grep = k.spawn("grep");
        let f = k.create_file("/data", text);
        (k, cat, grep, f)
    }

    #[test]
    fn finds_matches_like_reference() {
        let text = b"alpha beta\ngamma delta\nneedle here\nno match\nneedle again\n";
        let (mut k, cat, grep, f) = setup(text);
        let (r, _) = run_cat_grep(
            &mut k,
            cat,
            grep,
            f,
            b"needle",
            ApiMode::Posix,
            &AppCosts::calibrated(),
        );
        assert_eq!(r.matches, 2);
        assert_eq!(r.lines, 5);
    }

    #[test]
    fn modes_agree_on_results() {
        // Synthetic text with newlines sprinkled in.
        let mut text = Vec::new();
        for i in 0..5000u32 {
            text.extend_from_slice(format!("line {i} with some words\n").as_bytes());
            if i % 37 == 0 {
                text.extend_from_slice(b"the magic token appears\n");
            }
        }
        let (mut k, cat, grep, f) = setup(&text);
        let costs = AppCosts::calibrated();
        let (a, _) = run_cat_grep(&mut k, cat, grep, f, b"magic token", ApiMode::Posix, &costs);
        let (b, _) = run_cat_grep(
            &mut k,
            cat,
            grep,
            f,
            b"magic token",
            ApiMode::IoLite,
            &costs,
        );
        assert_eq!(a, b);
        assert_eq!(a.matches, 136);
    }

    #[test]
    fn iolite_reduction_matches_figure_13() {
        // ~1.75MB of text, cached (run once to warm).
        let mut text = Vec::new();
        while text.len() < 1_750_000 {
            text.extend_from_slice(b"some ordinary log line with content\n");
        }
        let (mut k, cat, grep, f) = setup(&text);
        let costs = AppCosts::calibrated();
        run_cat_grep(&mut k, cat, grep, f, b"pattern", ApiMode::Posix, &costs);
        k.reset_clock();
        let (_, posix_t) = run_cat_grep(&mut k, cat, grep, f, b"pattern", ApiMode::Posix, &costs);
        k.reset_clock();
        let (_, iolite_t) = run_cat_grep(&mut k, cat, grep, f, b"pattern", ApiMode::IoLite, &costs);
        let reduction = 1.0 - iolite_t.as_secs() / posix_t.as_secs();
        // Fig. 13: 48%.
        assert!(
            (0.35..0.60).contains(&reduction),
            "reduction {reduction} (posix {posix_t}, iolite {iolite_t})"
        );
    }

    #[test]
    fn split_lines_counted_once() {
        // One long line spanning several 8KB pipe chunks must be a
        // single line.
        let mut text = vec![b'x'; 200_000];
        text.push(b'\n');
        text.extend_from_slice(b"short\n");
        let (mut k, cat, grep, f) = setup(&text);
        let (r, _) = run_cat_grep(
            &mut k,
            cat,
            grep,
            f,
            b"short",
            ApiMode::IoLite,
            &AppCosts::calibrated(),
        );
        assert_eq!(r.lines, 2);
        assert_eq!(r.matches, 1);
    }
}

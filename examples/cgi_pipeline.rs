//! Dynamic content via FastCGI with and without IO-Lite (paper §5.3).
//!
//! Shows the mechanism, not just the numbers: the same CGI process
//! serves its in-memory document through a copy-mode pipe (conventional)
//! and a pass-by-reference pipe (IO-Lite), and the kernel metrics reveal
//! where the bytes went.
//!
//! Run with: `cargo run --release --example cgi_pipeline`

use iolite::core::{CostModel, Kernel};
use iolite::http::{CgiProcess, ServerKind};
use iolite::ipc::PipeMode;
use iolite::net::{DEFAULT_MSS, DEFAULT_TSS};

fn main() {
    let doc_bytes = 100 << 10;
    for (kind, mode) in [
        (ServerKind::Flash, PipeMode::Copy),
        (ServerKind::FlashLite, PipeMode::ZeroCopy),
    ] {
        let mut kernel = Kernel::new(CostModel::pentium_ii_333());
        let server = kernel.spawn("server");
        let mut cgi = CgiProcess::new(&mut kernel, server, doc_bytes, mode);
        // The client connection is a kernel socket behind a descriptor:
        // `IOL_write` on it is the transmission (§3.4).
        let sock = kernel.socket_create(server, kind.buffer_mode(), DEFAULT_MSS, DEFAULT_TSS);

        // Two requests: the second shows the steady state (warm
        // mappings, warm checksum cache).
        let first = cgi
            .serve(&mut kernel, kind, sock, server)
            .expect("healthy pipe");
        let second = cgi
            .serve(&mut kernel, kind, sock, server)
            .expect("healthy pipe");

        println!(
            "=== {} ({:?} pipe), 100KB dynamic document ===",
            kind.label(),
            mode
        );
        println!(
            "  request CPU: first {:.2}ms, steady-state {:.2}ms",
            first.cpu_total().as_ms(),
            second.cpu_total().as_ms()
        );
        println!(
            "  bytes copied total: {} ({} per request steady-state)",
            kernel.metrics.bytes_copied,
            if mode == PipeMode::Copy {
                "3 copies of the body"
            } else {
                "zero"
            },
        );
        println!(
            "  checksummed: {} bytes, of which {} served from the checksum cache",
            kernel.metrics.bytes_checksummed + kernel.metrics.bytes_checksum_cached,
            kernel.metrics.bytes_checksum_cached
        );
        println!(
            "  new page mappings: {} (amortized to zero after warm-up)",
            kernel.window.stats().pages_mapped
        );
        println!();
    }
    println!("Paper: conventional CGI halves server bandwidth; Flash-Lite keeps ~87%");
    println!("of its static-file speed while preserving CGI fault isolation.");
}

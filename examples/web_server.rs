//! Web-server shoot-out: Flash vs Flash-Lite vs Apache (paper §5.1).
//!
//! A reduced version of Figure 3: 40 clients repeatedly request one
//! document; aggregate bandwidth vs document size, per server.
//!
//! Run with: `cargo run --release --example web_server`

use iolite::http::{Experiment, ExperimentConfig, ServerKind, WorkloadKind};

fn main() {
    let sizes: &[(u64, &str)] = &[
        (5 << 10, "5KB"),
        (20 << 10, "20KB"),
        (50 << 10, "50KB"),
        (200 << 10, "200KB"),
    ];
    println!("HTTP single-file test, 40 clients, non-persistent (Fig. 3 excerpt)");
    println!(
        "{:>8} {:>12} {:>12} {:>12}",
        "size", "Flash-Lite", "Flash", "Apache"
    );
    for &(bytes, label) in sizes {
        let mut row = Vec::new();
        for server in [ServerKind::FlashLite, ServerKind::Flash, ServerKind::Apache] {
            let mut cfg = ExperimentConfig::new(server, WorkloadKind::SingleFile { bytes });
            cfg.requests = 3000;
            cfg.warmup = 300;
            let r = Experiment::run_config(cfg);
            row.push(r.mbit_s);
        }
        println!(
            "{:>8} {:>10.1}Mb {:>10.1}Mb {:>10.1}Mb",
            label, row[0], row[1], row[2]
        );
    }
    println!();
    println!("Expected shape (paper): Flash-Lite saturates the network by ~30-50KB;");
    println!("Flash plateaus ~40% lower; Apache trails; all converge below 5KB.");
}

//! The §5.8 application suite: wc, cat|grep, permute|wc, gcc (Fig. 13).
//!
//! Each program runs twice over the simulated kernel — once with the
//! copying POSIX API, once with the IO-Lite API — and reports the
//! runtime reduction next to the paper's number.
//!
//! Run with: `cargo run --release --example unix_tools`

use iolite::apps::{run_cat_grep, run_permute_wc, run_wc, ApiMode, AppCosts, CompilePipeline};
use iolite::core::{CostModel, Kernel};

fn main() {
    let costs = AppCosts::calibrated();

    // --- wc on a cached 1.75MB file (paper: -37%) ---------------------
    let mut k = Kernel::new(CostModel::pentium_ii_333());
    let pid = k.spawn("wc");
    let f = k.create_synthetic_file("/big.txt", 1_750_000, 1);
    run_wc(&mut k, pid, f, ApiMode::Posix, &costs); // Warm the cache.
    k.reset_clock();
    let (counts, posix) = run_wc(&mut k, pid, f, ApiMode::Posix, &costs);
    k.reset_clock();
    let (_, iolite) = run_wc(&mut k, pid, f, ApiMode::IoLite, &costs);
    report("wc (1.75MB cached)", posix.as_ms(), iolite.as_ms(), 37.0);
    println!("    ({} words counted for real)", counts.words);

    // --- cat | grep (paper: -48%) --------------------------------------
    let mut k = Kernel::new(CostModel::pentium_ii_333());
    let cat = k.spawn("cat");
    let grep = k.spawn("grep");
    let mut text = Vec::new();
    while text.len() < 1_750_000 {
        text.extend_from_slice(b"a line of ordinary prose without the word\n");
        text.extend_from_slice(b"another line mentioning zwaenepoel sometimes\n");
    }
    let f = k.create_file("/prose.txt", &text);
    run_cat_grep(&mut k, cat, grep, f, b"zwaenepoel", ApiMode::Posix, &costs);
    k.reset_clock();
    let (gres, posix) = run_cat_grep(&mut k, cat, grep, f, b"zwaenepoel", ApiMode::Posix, &costs);
    k.reset_clock();
    let (_, iolite) = run_cat_grep(&mut k, cat, grep, f, b"zwaenepoel", ApiMode::IoLite, &costs);
    report("cat | grep (1.75MB)", posix.as_ms(), iolite.as_ms(), 48.0);
    println!("    ({} matching lines found for real)", gres.matches);

    // --- permute | wc (paper: -33%; n=9 here for speed) ----------------
    let mut k = Kernel::new(CostModel::pentium_ii_333());
    let p = k.spawn("permute");
    let w = k.spawn("wc");
    let (_, posix) = run_permute_wc(&mut k, p, w, 9, ApiMode::Posix, &costs);
    k.reset_clock();
    let (pc, iolite) = run_permute_wc(&mut k, p, w, 9, ApiMode::IoLite, &costs);
    report("permute 9 | wc", posix.as_ms(), iolite.as_ms(), 33.0);
    println!("    ({} bytes of permutations streamed)", pc.bytes);

    // --- gcc chain (paper: ~0%) ----------------------------------------
    let mut k = Kernel::new(CostModel::pentium_ii_333());
    let pipeline = CompilePipeline::new(&mut k);
    let src = k.create_synthetic_file("/src.c", 167_000, 3);
    pipeline.compile(&mut k, src, ApiMode::Posix, &costs);
    k.reset_clock();
    let (_, posix) = pipeline.compile(&mut k, src, ApiMode::Posix, &costs);
    k.reset_clock();
    let (obj, iolite) = pipeline.compile(&mut k, src, ApiMode::IoLite, &costs);
    report("gcc (167KB source)", posix.as_ms(), iolite.as_ms(), 0.0);
    println!("    ({} bytes of object code produced)", obj.len());
}

fn report(name: &str, posix_ms: f64, iolite_ms: f64, paper_pct: f64) {
    let reduction = 100.0 * (1.0 - iolite_ms / posix_ms);
    println!(
        "{name:24} POSIX {posix_ms:8.1}ms  IO-Lite {iolite_ms:8.1}ms  \
         reduction {reduction:5.1}% (paper: {paper_pct:.0}%)"
    );
}

//! Quickstart: the IO-Lite buffer system in five minutes.
//!
//! Demonstrates the paper's §3.1 core ideas — immutable buffers, mutable
//! aggregates, pool recycling with generation numbers — the §3.9
//! checksum cache riding on them, and the §3.4 descriptor API: one `Fd`
//! capability and one fallible `IOL_read`/`IOL_write` pair for files,
//! pipes, sockets, and stdio.
//!
//! Run with: `cargo run --release --example quickstart`

use iolite::buf::{Acl, Aggregate, BufferPool, DomainId, PoolId};
use iolite::core::{CostModel, Fd, IolError, Kernel, Whence};
use iolite::net::{internet_checksum, BufferMode, ChecksumCache, DEFAULT_MSS, DEFAULT_TSS};

fn main() {
    // --- 1. Pools and aggregates -------------------------------------
    // A pool determines the ACL of everything allocated from it (§3.3).
    let server = DomainId(1);
    let pool = BufferPool::new(PoolId(1), Acl::with_domain(server), 64 * 1024);

    let body = Aggregate::from_bytes(&pool, b"<html>hello, unified I/O</html>");
    let header = Aggregate::from_bytes(&pool, b"HTTP/1.0 200 OK\r\n\r\n");

    // Concatenation is pointer manipulation: no bytes move.
    let response = header.concat(&body);
    println!(
        "response: {} bytes in {} slices",
        response.len(),
        response.num_slices()
    );

    // --- 2. Mutation without mutation ---------------------------------
    // Buffers are immutable; aggregates mutate by chaining (§3.8).
    let edited = response
        .replace(&pool, response.len() - 7, 0, b" (edited)")
        .expect("in range");
    println!("edited:   {}", String::from_utf8_lossy(&edited.to_vec()));
    println!("original: {}", String::from_utf8_lossy(&response.to_vec()));

    // --- 3. Checksum caching (§3.9) -----------------------------------
    let mut cache = ChecksumCache::new(1024);
    let slice = &body.slice_at(0);
    let first = cache.sum_for(slice);
    let second = cache.sum_for(slice);
    assert_eq!(first, second);
    println!(
        "checksum 0x{:04x}: computed {} bytes, then {} bytes served from cache",
        internet_checksum(&body),
        cache.stats().bytes_computed,
        cache.stats().bytes_cached,
    );

    // --- 4. Recycling and generations ---------------------------------
    // Drop everything: the pool's chunks drain and recycle with bumped
    // generation numbers, so stale checksums can never be served.
    let old_id = slice.id();
    let old_gen = slice.generation();
    drop((body, header, response, edited));
    let fresh = Aggregate::from_bytes(&pool, &vec![0u8; 64 * 1024]);
    let s = &fresh.slice_at(0);
    println!(
        "chunk {} reused: generation {} -> {} (checksum cache key changed)",
        s.id().chunk,
        old_gen,
        s.generation()
    );
    assert_eq!(s.id().chunk, old_id.chunk);
    assert_ne!(s.generation(), old_gen);
    println!("pool stats: {:?}", pool.stats());

    // --- 5. One descriptor to rule them all (§3.4) --------------------
    // Files, pipes, sockets, and the stdio triple installed at spawn
    // all answer to the same two calls, and every call is fallible.
    let mut k = Kernel::new(CostModel::pentium_ii_333());
    let pid = k.spawn("app");
    k.create_file("/hello.txt", b"hello through a descriptor");
    let (fd, _) = k.open(pid, "/hello.txt").expect("path resolves");
    k.lseek(pid, fd, 6, Whence::Set).expect("files seek");
    let (tail, _) = k.iol_read_fd(pid, fd, 100).expect("open file");
    println!("file fd {fd:?} read: {}", String::from_utf8_lossy(&tail.to_vec()));

    // The same call transmits on a TCP socket (zero-copy, checksummed).
    let sock = k.socket_create(pid, BufferMode::ZeroCopy, DEFAULT_MSS, DEFAULT_TSS);
    let (sent, out) = k.iol_write_fd(pid, sock, &tail).expect("socket up");
    let send = out.net.expect("socket writes carry send accounting");
    println!(
        "socket fd {sock:?} sent {sent} bytes as {} segment(s), {} checksummed",
        send.segments, send.csum_bytes_computed
    );

    // And the stdio triple is just descriptors 0/1/2.
    let stdout_msg = Aggregate::from_bytes(&pool, b"printed via fd 1");
    k.iol_write_fd(pid, Fd::STDOUT, &stdout_msg).expect("stdout open");
    let (console, _) = k.read_stdout(pid, 100).expect("console drains");
    println!("console saw: {}", String::from_utf8_lossy(&console.to_vec()));

    // Errors are values: close-then-use is EBADF, not a panic.
    k.close_fd(pid, fd).expect("first close");
    match k.iol_read_fd(pid, fd, 10) {
        Err(IolError::NotOpen { fd }) => println!("after close: fd {} is EBADF", fd.0),
        other => panic!("expected NotOpen, got {other:?}"),
    }
}

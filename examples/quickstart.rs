//! Quickstart: the IO-Lite buffer system in five minutes.
//!
//! Demonstrates the paper's §3.1 core ideas — immutable buffers, mutable
//! aggregates, pool recycling with generation numbers — and the §3.9
//! checksum cache riding on them.
//!
//! Run with: `cargo run --release --example quickstart`

use iolite::buf::{Acl, Aggregate, BufferPool, DomainId, PoolId};
use iolite::net::{internet_checksum, ChecksumCache};

fn main() {
    // --- 1. Pools and aggregates -------------------------------------
    // A pool determines the ACL of everything allocated from it (§3.3).
    let server = DomainId(1);
    let pool = BufferPool::new(PoolId(1), Acl::with_domain(server), 64 * 1024);

    let body = Aggregate::from_bytes(&pool, b"<html>hello, unified I/O</html>");
    let header = Aggregate::from_bytes(&pool, b"HTTP/1.0 200 OK\r\n\r\n");

    // Concatenation is pointer manipulation: no bytes move.
    let response = header.concat(&body);
    println!(
        "response: {} bytes in {} slices",
        response.len(),
        response.num_slices()
    );

    // --- 2. Mutation without mutation ---------------------------------
    // Buffers are immutable; aggregates mutate by chaining (§3.8).
    let edited = response
        .replace(&pool, response.len() - 7, 0, b" (edited)")
        .expect("in range");
    println!("edited:   {}", String::from_utf8_lossy(&edited.to_vec()));
    println!("original: {}", String::from_utf8_lossy(&response.to_vec()));

    // --- 3. Checksum caching (§3.9) -----------------------------------
    let mut cache = ChecksumCache::new(1024);
    let slice = &body.slice_at(0);
    let first = cache.sum_for(slice);
    let second = cache.sum_for(slice);
    assert_eq!(first, second);
    println!(
        "checksum 0x{:04x}: computed {} bytes, then {} bytes served from cache",
        internet_checksum(&body),
        cache.stats().bytes_computed,
        cache.stats().bytes_cached,
    );

    // --- 4. Recycling and generations ---------------------------------
    // Drop everything: the pool's chunks drain and recycle with bumped
    // generation numbers, so stale checksums can never be served.
    let old_id = slice.id();
    let old_gen = slice.generation();
    drop((body, header, response, edited));
    let fresh = Aggregate::from_bytes(&pool, &vec![0u8; 64 * 1024]);
    let s = &fresh.slice_at(0);
    println!(
        "chunk {} reused: generation {} -> {} (checksum cache key changed)",
        s.id().chunk,
        old_gen,
        s.generation()
    );
    assert_eq!(s.id().chunk, old_id.chunk);
    assert_ne!(s.generation(), old_gen);
    println!("pool stats: {:?}", pool.stats());
}

//! The WAN effect (paper §5.7, Figure 12): why copy-based servers lose
//! throughput as round-trip times grow, and IO-Lite does not.
//!
//! As delay rises, more clients are needed to keep the server busy, each
//! open connection's socket buffer pins `Tss = 64KB` of *copied* data in
//! a conventional stack, and the file cache shrinks by exactly that
//! much. IO-Lite socket buffers hold references into the cache instead.
//!
//! Run with: `cargo run --release --example wan_effect`

use iolite::http::{Experiment, ExperimentConfig, ServerKind, WorkloadKind};
use iolite::trace::{TraceSpec, Workload};

fn main() {
    let base = Workload::synthesize(&TraceSpec::subtrace_150mb(), 42);
    let w = base.stratified_subset(120 << 20);
    println!(
        "120MB data set ({} files) on a 128MB machine; clients scale 64->900 with delay",
        w.len()
    );
    println!(
        "{:>8} {:>8} {:>14} {:>14} {:>14}",
        "RTT", "clients", "Flash-Lite", "Flash", "Apache"
    );
    for (rtt_ms, clients) in [(0.0, 64), (50.0, 343), (150.0, 900)] {
        let mut row = Vec::new();
        for server in [ServerKind::FlashLite, ServerKind::Flash, ServerKind::Apache] {
            let mut cfg = ExperimentConfig::new(
                server,
                WorkloadKind::TraceSampled {
                    workload: w.clone(),
                },
            );
            cfg.clients = clients;
            cfg.requests = 30_000;
            cfg.warmup = 15_000;
            cfg.rtt_ms = rtt_ms;
            let r = Experiment::run_config(cfg);
            row.push((r.mbit_s, r.hit_rate));
        }
        println!(
            "{:>6}ms {:>8} {:>9.1}Mb/{:.2} {:>9.1}Mb/{:.2} {:>9.1}Mb/{:.2}",
            rtt_ms, clients, row[0].0, row[0].1, row[1].0, row[1].1, row[2].0, row[2].1
        );
    }
    println!();
    println!("(bandwidth / file-cache hit rate; paper: Flash -33%, Apache -50%, Flash-Lite flat)");
}

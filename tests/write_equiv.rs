//! Write-path equivalence (PR 10): over interleaved GET/PUT workloads,
//! every served response is an **untorn version** of the document (the
//! initial bytes or some completed PUT body, never a mix), the final
//! store image agrees with the unified cache, the journal replays
//! bit-identically through the pure core, and a shared-nothing sharded
//! fleet with home-routed writes serves the same bytes as a
//! single-shard run.

use std::collections::HashMap;

use iolite::buf::Aggregate;
use iolite::core::{replay, CostModel, Kernel, KernelState, Pid};
use iolite::fs::{home_shard, CacheKey, CacheOwnership, Policy};
use iolite::http::event_loop::{EventLoopConfig, EventLoopServer};
use iolite::http::sharded::{run_sharded, ShardedConfig};
use iolite::http::{created, response_header, synthetic_put_body};
use iolite::net::checksum::reference_checksum;
use iolite::net::{internet_checksum, BufferMode, DEFAULT_MSS, DEFAULT_TSS};
use proptest::prelude::*;
use proptest::test_runner::ProptestConfig;

/// A journaled write-capable kernel with the Flash-Lite configuration
/// (GDS cache policy, §3.9 checksum cache on).
fn journaled_kernel() -> Kernel {
    let mut k = Kernel::with_policy(CostModel::pentium_ii_333(), Policy::Gds);
    k.start_journal();
    k.set_checksum_cache(true);
    k
}

/// Replays the kernel's journal from a blank state and asserts both the
/// state digest and the effect-fold metrics land bit-identically.
fn assert_replays(mut kernel: Kernel) {
    let journal = kernel.take_journal().expect("journal was recording");
    assert!(!journal.is_empty());
    let (replayed, metrics) = replay(
        KernelState::new(CostModel::pentium_ii_333(), Policy::Gds),
        &journal,
    );
    assert_eq!(
        replayed.state_hash(),
        kernel.state_hash(),
        "journal must replay to the live state digest"
    );
    assert_eq!(metrics, kernel.metrics, "replayed metrics must match");
}

/// Satellite 1: GET → PUT → GET on one connection. The first GET serves
/// the original bytes, the PUT answers 201, and the second GET serves
/// the replacement — byte-verified against the store and
/// checksum-verified against the reference sum (a stale §3.9 entry
/// surviving the PUT would break the latter).
#[test]
fn get_put_get_roundtrip_is_byte_and_checksum_verified() {
    let mut k = journaled_kernel();
    let pid = k.spawn("server");
    k.create_synthetic_file("/doc", 50_000, 11);
    let file = k.store.lookup("/doc").unwrap();
    let initial = k.store.read(file, 0, 50_000).unwrap();

    let scripts = vec![vec![
        "/doc".to_string(),
        "PUT /doc 30000".to_string(),
        "/doc".to_string(),
    ]];
    let cfg = EventLoopConfig {
        capture_responses: true,
        ..EventLoopConfig::default()
    };
    let (report, mut kernel) = EventLoopServer::new(k, pid, scripts, None, cfg).run();
    assert_eq!(report.stats.completed, 3);
    assert_eq!(report.stats.failed, 0);
    assert_eq!(report.stats.blocked_io, 0);
    assert_eq!(report.stats.puts, 1);

    let new_body = synthetic_put_body("/doc", 30_000);
    let mut want_old = response_header(initial.len() as u64, true);
    want_old.extend_from_slice(&initial);
    let mut want_new = response_header(new_body.len() as u64, true);
    want_new.extend_from_slice(&new_body);
    let got: Vec<&Vec<u8>> = report
        .requests
        .iter()
        .map(|r| r.response.as_ref().expect("captured"))
        .collect();
    assert_eq!(got[0], &want_old, "first GET serves the original");
    assert_eq!(got[1], &created(true), "PUT answers 201");
    assert_eq!(got[2], &want_new, "second GET serves the replacement");

    // Store image and cache entry both hold the replacement, and a
    // fresh read checksums to the reference over the new bytes.
    assert_eq!(kernel.store.len(file), Some(30_000));
    assert_eq!(kernel.store.read(file, 0, 30_000).unwrap(), new_body);
    let (fd, _) = kernel.open(pid, "/doc").unwrap();
    let (agg, _) = kernel.iol_pread(pid, fd, 0, 30_000).unwrap();
    assert_eq!(agg.to_vec(), new_body);
    assert_eq!(internet_checksum(&agg), reference_checksum(&new_body));

    assert_replays(kernel);
}

/// The §3.9 staleness mechanism directly: transmit a document twice
/// (the second ride is fully checksum-cached), replace it with
/// `put_install`, and transmit the re-read — the post-PUT send must
/// compute every byte fresh. A cached sum surviving the PUT would
/// surface here as `csum_bytes_cached > 0` over different bytes.
#[test]
fn stale_checksum_is_never_served_after_put() {
    let mut k = journaled_kernel();
    let pid = k.spawn("server");
    k.create_synthetic_file("/doc", 10_000, 3);
    let file = k.store.lookup("/doc").unwrap();
    let sock = k.socket_create(pid, BufferMode::ZeroCopy, DEFAULT_MSS, DEFAULT_TSS);

    let (fd, _) = k.open(pid, "/doc").unwrap();
    let (body, _) = k.iol_pread(pid, fd, 0, 10_000).unwrap();
    let (_, first) = k.iol_write_fd(pid, sock, &body).unwrap();
    assert_eq!(first.net.unwrap().csum_bytes_computed, 10_000);
    let (_, second) = k.iol_write_fd(pid, sock, &body).unwrap();
    assert_eq!(
        second.net.unwrap().csum_bytes_cached,
        10_000,
        "the cache must be live before the PUT for the test to mean anything"
    );

    let new_body = synthetic_put_body("/doc", 12_000);
    let pool = k.process(pid).pool().clone();
    let agg = Aggregate::from_bytes(&pool, &new_body);
    k.put_install(pid, file, &agg);

    let (fd2, _) = k.open(pid, "/doc").unwrap();
    let (reread, _) = k.iol_pread(pid, fd2, 0, 12_000).unwrap();
    assert_eq!(reread.to_vec(), new_body);
    let (_, third) = k.iol_write_fd(pid, sock, &reread).unwrap();
    let send = third.net.unwrap();
    assert_eq!(send.csum_bytes_cached, 0, "no stale sums after the PUT");
    assert_eq!(send.csum_bytes_computed, 12_000);
    assert_eq!(internet_checksum(&reread), reference_checksum(&new_body));

    assert_replays(k);
}

/// Pinned regression: a replica read on a non-home shard must be sized
/// by the replica, not the local store. A remote write that changed
/// `/f1` from 7136 to 13608 bytes committed at home; the writer's
/// shard then fetched the new bytes, installed them as a replica — and
/// served a GET framed by `fd_len`, which read the *local* store's
/// stale 7136 (non-home stores are never updated under shared-nothing
/// sharding). The response was a 7136-byte prefix of the new document:
/// wrong length, silently torn. Fixed by making a resident whole-file
/// cache entry authoritative over store metadata in `fd_len`.
#[test]
fn replica_read_is_sized_by_the_replica_not_the_stale_local_store() {
    let config = ShardedConfig {
        shards: 3,
        ownership: CacheOwnership::Replicate,
        cost: CostModel::pentium_ii_333(),
        policy: Policy::Gds,
        journal: false,
        loop_cfg: EventLoopConfig {
            capture_responses: true,
            ..EventLoopConfig::default()
        },
    };
    let setup = |k: &mut Kernel| -> Pid {
        let pid = k.spawn("server");
        // With three shards, FileId(0) is homed on shard 1; conn id 1
        // lands on shard 2, so the PUT routes over the fabric and the
        // GETs read a fetched replica (the remote_writes assert below
        // guards both placements).
        k.create_synthetic_file("/f", 7_136, 0x6_0000);
        pid
    };
    let conns = vec![(
        1u64,
        vec![
            "PUT /f 13608".to_string(),
            "/f".to_string(),
            "/f".to_string(),
        ],
    )];
    let report = run_sharded(&config, setup, conns);
    assert_eq!(report.failed(), 0);
    assert_eq!(report.completed(), 3);
    let writes: u64 = report.shards.iter().map(|s| s.report.stats.remote_writes).sum();
    assert_eq!(writes, 1, "the PUT must route over the fabric to mean anything");
    let new_body = synthetic_put_body("/f", 13_608);
    let mut want = response_header(new_body.len() as u64, true);
    want.extend_from_slice(&new_body);
    let gets: Vec<&Vec<u8>> = report
        .shards
        .iter()
        .flat_map(|s| &s.report.requests)
        .filter_map(|r| r.response.as_ref())
        .filter(|r| r.starts_with(b"HTTP/1.1 200"))
        .collect();
    assert_eq!(gets.len(), 2);
    for got in gets {
        assert_eq!(got, &want, "replica GET must serve the full new document");
    }
}

/// Acceptance criterion: a journaled 256-connection mixed GET/PUT run
/// completes with `blocked_io == 0` and replays bit-identically
/// (state digest + metrics) from a blank state.
#[test]
fn acceptance_256_connections_mixed_workload_replays() {
    let mut k = journaled_kernel();
    let pid = k.spawn("server");
    let files = 12usize;
    let paths: Vec<String> = (0..files).map(|i| format!("/f{i}")).collect();
    for (i, path) in paths.iter().enumerate() {
        k.create_synthetic_file(path, 4_000 + 2_400 * i as u64, 0x7_0000 + i as u64);
    }
    // A deterministic mix: every connection issues three requests,
    // roughly a third of them PUTs.
    let mut x = 0x243F_6A88_85A3_08D3u64;
    let mut step = || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x
    };
    let scripts: Vec<Vec<String>> = (0..256)
        .map(|_| {
            (0..3)
                .map(|_| {
                    let path = &paths[(step() % files as u64) as usize];
                    if step() % 3 == 0 {
                        format!("PUT {path} {}", 1 + step() % 16_000)
                    } else {
                        path.clone()
                    }
                })
                .collect()
        })
        .collect();
    let (report, kernel) =
        EventLoopServer::new(k, pid, scripts, None, EventLoopConfig::default()).run();
    assert_eq!(report.stats.completed, 768);
    assert_eq!(report.stats.failed, 0);
    assert_eq!(report.stats.blocked_io, 0, "readiness-driven, no spin");
    assert!(report.stats.puts > 150, "the mix must actually write");
    assert_replays(kernel);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Interleaved GETs and PUTs across concurrent connections: every
    /// GET serves an untorn version (the initial bytes or some
    /// complete PUT body — never a mix), the cache agrees with the
    /// store at quiesce, no pins leak, and the journal replays.
    #[test]
    fn interleaved_gets_and_puts_stay_consistent_and_replay(
        sizes in proptest::collection::vec(1u64..40_000, 2..5),
        ops in proptest::collection::vec(
            (any::<u64>(), any::<bool>(), 1u64..20_000), 4..20),
    ) {
        let mut k = journaled_kernel();
        let pid = k.spawn("server");
        let paths: Vec<String> = (0..sizes.len()).map(|i| format!("/f{i}")).collect();
        // Every version a GET may legally serve: the initial bytes
        // plus each PUT body targeting the path.
        let mut versions: HashMap<String, Vec<Vec<u8>>> = HashMap::new();
        for (i, &bytes) in sizes.iter().enumerate() {
            k.create_synthetic_file(&paths[i], bytes, 0x5_0000 + i as u64);
            let file = k.store.lookup(&paths[i]).unwrap();
            versions.insert(paths[i].clone(), vec![k.store.read(file, 0, bytes).unwrap()]);
        }
        let n_conns = ops.len().min(6);
        let mut scripts = vec![Vec::new(); n_conns];
        for (j, &(pick, is_put, len)) in ops.iter().enumerate() {
            let path = &paths[(pick % paths.len() as u64) as usize];
            if is_put {
                versions.get_mut(path).unwrap().push(synthetic_put_body(path, len));
                scripts[j % n_conns].push(format!("PUT {path} {len}"));
            } else {
                scripts[j % n_conns].push(path.clone());
            }
        }
        let cfg = EventLoopConfig {
            capture_responses: true,
            ..EventLoopConfig::default()
        };
        let (report, kernel) = EventLoopServer::new(k, pid, scripts, None, cfg).run();
        prop_assert_eq!(report.stats.completed as usize, ops.len());
        prop_assert_eq!(report.stats.failed, 0);
        prop_assert_eq!(report.stats.blocked_io, 0);

        for req in &report.requests {
            let resp = req.response.as_ref().expect("captured");
            if resp.starts_with(b"HTTP/1.1 201") {
                prop_assert_eq!(resp, &created(true));
                continue;
            }
            let ok = versions[&req.path].iter().any(|v| {
                let mut want = response_header(v.len() as u64, true);
                want.extend_from_slice(v);
                *resp == want
            });
            prop_assert!(ok, "{}: response is a torn or unknown version", req.path);
        }

        // Quiesce: the store holds some complete version, the cache
        // entry (when resident) matches it, and no pins leak.
        for path in &paths {
            let file = kernel.store.lookup(path).unwrap();
            let len = kernel.store.len(file).unwrap();
            let stored = kernel.store.read(file, 0, len).unwrap();
            prop_assert!(
                versions[path].contains(&stored),
                "{path}: store holds a torn or unknown version"
            );
            let key = CacheKey::whole(file);
            prop_assert_eq!(kernel.cache.pins(&key), 0, "{} leaked pins", path);
            if let Some(agg) = kernel.cache.peek(&key) {
                prop_assert_eq!(agg.to_vec(), stored, "{} cache diverges from store", path);
            }
        }
        assert_replays(kernel);
    }

    /// A shared-nothing fleet with home-routed writes serves the same
    /// bytes as a single shard. Each path's full GET/PUT history lives
    /// on one connection, so its response sequence is determined and
    /// partitioning must not change it; afterwards the home shard's
    /// store (the write authority) must match the single-shard image.
    #[test]
    fn sharded_write_serving_matches_single_shard(
        sizes in proptest::collection::vec(1u64..30_000, 2..5),
        op_picks in proptest::collection::vec(
            (any::<bool>(), 1u64..15_000), 6..18),
        conn_seed in any::<u64>(),
        shards in 2usize..5,
        replicate in any::<bool>(),
    ) {
        let ownership = if replicate {
            CacheOwnership::Replicate
        } else {
            CacheOwnership::HomeOnly
        };
        let config = |shards: usize, journal: bool| ShardedConfig {
            shards,
            ownership,
            cost: CostModel::pentium_ii_333(),
            policy: Policy::Gds,
            journal,
            loop_cfg: EventLoopConfig {
                capture_responses: true,
                ..EventLoopConfig::default()
            },
        };
        let paths: Vec<String> = (0..sizes.len()).map(|i| format!("/f{i}")).collect();
        let setup = {
            let sizes = sizes.clone();
            let paths = paths.clone();
            move |k: &mut Kernel| -> Pid {
                let pid = k.spawn("server");
                for (i, &bytes) in sizes.iter().enumerate() {
                    k.create_synthetic_file(&paths[i], bytes, 0x6_0000 + i as u64);
                }
                pid
            }
        };
        // Path-partitioned scripts: connection `i % n` owns path `i`,
        // so every file's write history is serial on one connection.
        let n_conns = paths.len().min(4);
        let mut conns: Vec<(u64, Vec<String>)> = (0..n_conns)
            .map(|j| (conn_seed.wrapping_add(j as u64 * 4096), Vec::new()))
            .collect();
        for (j, &(is_put, len)) in op_picks.iter().enumerate() {
            let p = j % paths.len();
            let path = &paths[p];
            conns[p % n_conns].1.push(if is_put {
                format!("PUT {path} {len}")
            } else {
                path.clone()
            });
        }

        let base = run_sharded(&config(1, false), setup.clone(), conns.clone());
        let fleet = run_sharded(&config(shards, true), setup, conns);

        prop_assert_eq!(base.failed(), 0);
        prop_assert_eq!(fleet.failed(), 0);
        prop_assert_eq!(fleet.completed(), base.completed());
        prop_assert_eq!(fleet.completed() as usize, op_picks.len());

        // Identical per-path response multisets: each path's history
        // is fixed by its owning connection, so the bytes served must
        // survive partitioning exactly.
        let responses = |r: &iolite::http::ShardedReport| {
            let mut m: HashMap<String, Vec<Vec<u8>>> = HashMap::new();
            for s in &r.shards {
                assert_eq!(s.report.stats.blocked_io, 0, "no busy-spin");
                for req in &s.report.requests {
                    m.entry(req.path.clone())
                        .or_default()
                        .push(req.response.clone().expect("captured"));
                }
            }
            for v in m.values_mut() {
                v.sort_unstable();
            }
            m
        };
        prop_assert_eq!(responses(&fleet), responses(&base));

        // The home shard's store — the write authority under
        // shared-nothing sharding — matches the single-shard image.
        for path in &paths {
            let truth = &base.shards[0].kernel.store;
            let file = truth.lookup(path).unwrap();
            let len = truth.len(file).unwrap();
            let home = home_shard(file, shards);
            let fleet_store = &fleet.shards[home].kernel.store;
            prop_assert_eq!(fleet_store.len(file), Some(len), "{}", path);
            prop_assert_eq!(
                fleet_store.read(file, 0, len),
                truth.read(file, 0, len),
                "{}: home store diverges from single-shard store",
                path
            );
        }

        // Every shard's journal replays bit-identically.
        for outcome in fleet.shards {
            let mut kernel = outcome.kernel;
            let journal = kernel.take_journal().expect("journal was recording");
            let (replayed, metrics) = replay(
                KernelState::new(CostModel::pentium_ii_333(), Policy::Gds),
                &journal,
            );
            prop_assert_eq!(
                replayed.state_hash(),
                kernel.state_hash(),
                "shard {} journal must replay to the live state digest",
                outcome.shard
            );
            prop_assert_eq!(metrics, kernel.metrics.clone(), "shard {}", outcome.shard);
        }
    }
}

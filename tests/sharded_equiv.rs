//! Cross-shard equivalence (PR 7): over random corpora, scripts, shard
//! counts, and both ownership modes, a shared-nothing sharded fleet
//! serves **byte-identical responses** and **identical aggregate
//! request counts** to a single-shard run of the same connections —
//! and every shard's journal replays bit-identically through the pure
//! core from a blank state.

use std::collections::HashMap;

use iolite::core::{replay, CostModel, Kernel, KernelState, Pid};
use iolite::fs::{CacheOwnership, Policy};
use iolite::http::event_loop::EventLoopConfig;
use iolite::http::response_header;
use iolite::http::sharded::{run_sharded, ShardedConfig};
use proptest::prelude::*;
use proptest::test_runner::ProptestConfig;

fn config(shards: usize, ownership: CacheOwnership, journal: bool) -> ShardedConfig {
    ShardedConfig {
        shards,
        ownership,
        cost: CostModel::pentium_ii_333(),
        policy: Policy::Gds,
        journal,
        loop_cfg: EventLoopConfig {
            capture_responses: true,
            ..EventLoopConfig::default()
        },
    }
}

/// Responses for `path` must be `header ++ body` ground truth — checked
/// against the serving shard's own store (every shard holds the full
/// corpus; only cache residency is partitioned).
fn assert_ground_truth(kernel: &Kernel, path: &str, response: &[u8]) {
    let file = kernel.store.lookup(path).expect("corpus file");
    let flen = kernel.store.len(file).unwrap();
    let body = kernel.store.read(file, 0, flen).unwrap();
    let mut expected = response_header(flen, true);
    expected.extend_from_slice(&body);
    assert_eq!(response, expected, "response for {path}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn sharded_serving_is_equivalent_to_single_shard(
        sizes in proptest::collection::vec(1u64..60_000, 2..6),
        picks in proptest::collection::vec(any::<u64>(), 4..24),
        conn_seed in any::<u64>(),
        shards in 2usize..5,
        replicate in any::<bool>(),
    ) {
        let ownership = if replicate {
            CacheOwnership::Replicate
        } else {
            CacheOwnership::HomeOnly
        };
        let paths: Vec<String> = (0..sizes.len()).map(|i| format!("/f{i:05}")).collect();
        let setup = |k: &mut Kernel| -> Pid {
            let pid = k.spawn("server");
            for (i, &bytes) in sizes.iter().enumerate() {
                k.create_synthetic_file(&paths[i], bytes, 0x5_0000 + i as u64);
            }
            pid
        };
        // Structured conn ids (stride 4096 off a random base): the
        // full-width mixer must spread them; scripts deal the picks
        // round-robin onto 8 connections.
        let n_conns = picks.len().min(8);
        let mut conns: Vec<(u64, Vec<String>)> = (0..n_conns)
            .map(|j| (conn_seed.wrapping_add(j as u64 * 4096), Vec::new()))
            .collect();
        for (j, pick) in picks.iter().enumerate() {
            let path = paths[(*pick % paths.len() as u64) as usize].clone();
            conns[j % n_conns].1.push(path);
        }

        let base = run_sharded(&config(1, ownership, false), setup, conns.clone());
        let fleet = run_sharded(&config(shards, ownership, true), setup, conns);

        // Identical aggregate counts.
        prop_assert_eq!(base.failed(), 0);
        prop_assert_eq!(fleet.failed(), 0);
        prop_assert_eq!(fleet.completed(), base.completed());
        prop_assert_eq!(fleet.completed() as usize, picks.len());
        prop_assert_eq!(base.remote_reads(), 0, "one shard never routes");

        // Identical per-path request multisets (partitioning moved
        // requests between shards; it must not change what was served).
        let count_paths = |r: &iolite::http::ShardedReport| -> HashMap<String, u64> {
            let mut m = HashMap::new();
            for s in &r.shards {
                for req in &s.report.requests {
                    *m.entry(req.path.clone()).or_insert(0) += 1;
                }
            }
            m
        };
        prop_assert_eq!(count_paths(&fleet), count_paths(&base));

        // Byte-identical responses: both runs must match ground truth
        // (hence each other), remote and local serves alike.
        for report in [&base, &fleet] {
            for s in &report.shards {
                prop_assert_eq!(s.report.stats.blocked_io, 0, "no busy-spin");
                for req in &s.report.requests {
                    assert_ground_truth(
                        &s.kernel,
                        &req.path,
                        req.response.as_ref().expect("captured"),
                    );
                }
            }
        }

        // Every shard's journal replays bit-identically from a blank
        // state: remote installs are journaled commands, so a shard's
        // journal is self-contained.
        for outcome in fleet.shards {
            let mut kernel = outcome.kernel;
            let journal = kernel.take_journal().expect("journal was recording");
            prop_assert!(!journal.is_empty());
            let (replayed, metrics) =
                replay(KernelState::new(CostModel::pentium_ii_333(), Policy::Gds), &journal);
            prop_assert_eq!(
                replayed.state_hash(),
                kernel.state_hash(),
                "shard {} journal must replay to the live state digest",
                outcome.shard
            );
            prop_assert_eq!(
                metrics,
                kernel.metrics.clone(),
                "shard {} replayed metrics must match",
                outcome.shard
            );
        }
    }
}

//! Descriptor-layer semantics across the whole stack (§3.4): one `Fd`
//! capability for files, pipes, sockets, and stdio; `dup` sharing;
//! precise errors; and — property-checked — the guarantee that routing
//! the TCP send path through descriptors changed neither segmentation
//! nor checksum-cache behavior.

use iolite::buf::{Acl, Aggregate, BufferPool, PoolId};
use iolite::core::{CostModel, Fd, IolError, Kernel, Whence};
use iolite::ipc::PipeMode;
use iolite::net::{
    BufferMode, ChecksumCache, SegmentHeader, TcpConn, DEFAULT_MSS, DEFAULT_TSS,
};
use proptest::prelude::*;

fn kernel() -> Kernel {
    Kernel::new(CostModel::pentium_ii_333())
}

/// Flattens a segment chain stream to its exact wire bytes.
fn wire_bytes(chains: &[iolite::net::MbufChain]) -> Vec<u8> {
    chains.iter().flat_map(|c| c.to_vec()).collect()
}

#[test]
fn dup_shares_one_offset_through_iol_read_fd() {
    let mut k = kernel();
    let pid = k.spawn("app");
    k.create_file("/seq", b"abcdefghijkl");
    let (fd, _) = k.open(pid, "/seq").unwrap();
    let dup = k.dup_fd(pid, fd).unwrap();
    // Reads through either number advance the one shared description.
    assert_eq!(k.iol_read_fd(pid, fd, 4).unwrap().0.to_vec(), b"abcd");
    assert_eq!(k.iol_read_fd(pid, dup, 4).unwrap().0.to_vec(), b"efgh");
    // lseek through the dup moves the original too.
    k.lseek(pid, dup, -2, Whence::Cur).unwrap();
    assert_eq!(k.iol_read_fd(pid, fd, 6).unwrap().0.to_vec(), b"ghijkl");
    // An independent open has its own offset.
    let (other, _) = k.open(pid, "/seq").unwrap();
    assert_eq!(k.iol_read_fd(pid, other, 2).unwrap().0.to_vec(), b"ab");
    // Closing one number keeps the description alive for the other.
    k.close_fd(pid, fd).unwrap();
    k.lseek(pid, dup, 0, Whence::Set).unwrap();
    assert_eq!(k.iol_read_fd(pid, dup, 2).unwrap().0.to_vec(), b"ab");
}

#[test]
fn socket_fds_round_trip_through_the_tcp_send_path() {
    let mut k = kernel();
    let pid = k.spawn("server");
    let file = k.create_synthetic_file("/doc", 20_000, 8);
    let expected = k.store.read(file, 0, 20_000).unwrap();
    let fd = k.open_file(pid, file);
    let (body, _) = k.iol_read_fd(pid, fd, 20_000).unwrap();

    let sock = k.socket_create(pid, BufferMode::ZeroCopy, DEFAULT_MSS, DEFAULT_TSS);
    // IOL_write on the socket descriptor: the send-path accounting
    // rides the outcome.
    let (n, out) = k.iol_write_fd(pid, sock, &body).unwrap();
    assert_eq!(n, 20_000);
    let send = out.net.expect("socket writes carry SendOutcome");
    assert_eq!(send.payload_bytes, 20_000);
    assert_eq!(send.bytes_copied, 0, "zero-copy mode");
    // The materialized segments carry the exact file bytes.
    let (segments, _) = k.socket_transmit_segments(pid, sock, &body).unwrap();
    let mut payload = Vec::new();
    for chain in &segments {
        let wire = chain.to_vec();
        let h = SegmentHeader::parse(&wire).expect("valid TCP/IP header");
        assert_eq!(h.payload_len as usize, wire.len() - 40);
        payload.extend_from_slice(&wire[40..]);
    }
    assert_eq!(payload, expected);
    // The inbound direction works through the same descriptor: deliver
    // at the kernel edge, read with IOL_read.
    let pool = k.process(pid).pool().clone();
    k.socket_deliver(pid, sock, Aggregate::from_bytes(&pool, b"ACK"))
        .unwrap();
    assert_eq!(k.iol_read_fd(pid, sock, 100).unwrap().0.to_vec(), b"ACK");
}

#[test]
fn stdio_fds_work_immediately_after_spawn() {
    let mut k = kernel();
    let pid = k.spawn("tool");
    let pool = k.process(pid).pool().clone();
    // The triple exists without any setup: write stdout/stderr, read
    // stdin, through the ordinary IOL calls.
    let out_msg = Aggregate::from_bytes(&pool, b"to stdout");
    let err_msg = Aggregate::from_bytes(&pool, b"to stderr");
    k.iol_write_fd(pid, Fd::STDOUT, &out_msg).unwrap();
    k.iol_write_fd(pid, Fd::STDERR, &err_msg).unwrap();
    assert_eq!(k.read_stdout(pid, 100).unwrap().0.to_vec(), b"to stdout");
    assert_eq!(k.read_stderr(pid, 100).unwrap().0.to_vec(), b"to stderr");
    let input = Aggregate::from_bytes(&pool, b"from tty");
    k.feed_stdin(pid, &input).unwrap();
    assert_eq!(k.iol_read_fd(pid, Fd::STDIN, 100).unwrap().0.to_vec(), b"from tty");
    // stdin is read-only, stdout write-only — the fd layer says so.
    assert!(matches!(
        k.iol_write_fd(pid, Fd::STDIN, &out_msg),
        Err(IolError::BadFdKind { .. })
    ));
    assert!(matches!(
        k.iol_read_fd(pid, Fd::STDOUT, 10),
        Err(IolError::BadFdKind { .. })
    ));
    // And dup2 re-plumbs it like a shell: `tool | sink`.
    let sink = k.spawn("sink");
    let (w, r) = k.pipe_between(pid, sink, PipeMode::ZeroCopy);
    k.dup2_fd(pid, w, Fd::STDOUT).unwrap();
    k.dup2_fd(sink, r, Fd::STDIN).unwrap();
    let piped = Aggregate::from_bytes(&pool, b"piped");
    k.iol_write_fd(pid, Fd::STDOUT, &piped).unwrap();
    assert_eq!(k.iol_read_fd(sink, Fd::STDIN, 100).unwrap().0.to_vec(), b"piped");
}

#[test]
fn close_then_use_returns_not_open() {
    let mut k = kernel();
    let pid = k.spawn("app");
    let f = k.create_file("/f", b"data");
    let fd = k.open_file(pid, f);
    k.close_fd(pid, fd).unwrap();
    // Every operation on the dead number is EBADF.
    assert!(matches!(
        k.iol_read_fd(pid, fd, 10),
        Err(IolError::NotOpen { .. })
    ));
    let pool = k.process(pid).pool().clone();
    let msg = Aggregate::from_bytes(&pool, b"x");
    assert!(matches!(
        k.iol_write_fd(pid, fd, &msg),
        Err(IolError::NotOpen { .. })
    ));
    assert!(matches!(
        k.lseek(pid, fd, 0, Whence::Set),
        Err(IolError::NotOpen { .. })
    ));
    assert!(k.close_fd(pid, fd).is_err(), "double close is EBADF");
    // Same story for sockets.
    let sock = k.socket_create(pid, BufferMode::ZeroCopy, DEFAULT_MSS, DEFAULT_TSS);
    k.close_fd(pid, sock).unwrap();
    assert!(matches!(
        k.iol_write_fd(pid, sock, &msg),
        Err(IolError::NotOpen { .. })
    ));
}

proptest! {
    /// Tentpole invariant: moving `TcpConn` behind the descriptor table
    /// changed nothing about the send path. For arbitrary payloads,
    /// fragmentations, and MSS choices, socket-fd writes produce
    /// byte-identical segment streams to a hand-driven `TcpConn::send`,
    /// with identical checksum-cache behavior (first send computes,
    /// retransmission is served from cache) and identical accounting.
    #[test]
    fn socket_fd_writes_match_direct_tcpconn_send(
        data in proptest::collection::vec(any::<u8>(), 1..6000),
        frag in 64usize..2048,
        mss_pick in 0usize..3,
    ) {
        let mss = [536, 1460, 9000][mss_pick];
        // One fragmented aggregate, shared by both paths (identical
        // slice identities, so identical checksum-cache keys).
        let pool = BufferPool::new(PoolId(500), Acl::kernel_only(), frag);
        let payload = Aggregate::from_bytes(&pool, &data);

        // Path A: the kernel socket behind a descriptor.
        let mut k = kernel();
        let pid = k.spawn("server");
        let sock = k.socket_create(pid, BufferMode::ZeroCopy, mss, DEFAULT_TSS);
        let (_, first) = k.iol_write_fd(pid, sock, &payload).unwrap();
        let (_, second) = k.iol_write_fd(pid, sock, &payload).unwrap();
        let (fd_chains, _) = k.socket_transmit_segments(pid, sock, &payload).unwrap();

        // Path B: a hand-driven connection with the same identity (the
        // kernel numbers connections from 1) and its own cache.
        let mut conn = TcpConn::new(1, BufferMode::ZeroCopy, mss, DEFAULT_TSS);
        let mut cache = ChecksumCache::new(1 << 16);
        let d_first = conn.send(&payload, &mut cache);
        let d_second = conn.send(&payload, &mut cache);
        let direct_chains = conn.build_segments(&payload);

        // Byte-identical segment streams (headers included: same seq,
        // ports, lengths).
        prop_assert_eq!(wire_bytes(&fd_chains), wire_bytes(&direct_chains));
        // Identical send accounting on both transmissions.
        prop_assert_eq!(first.net.unwrap(), d_first);
        prop_assert_eq!(second.net.unwrap(), d_second);
        // Checksum-cache behavior unchanged: compute once, then cached.
        prop_assert_eq!(d_first.csum_bytes_computed, data.len() as u64);
        prop_assert_eq!(second.net.unwrap().csum_bytes_computed, 0);
        prop_assert_eq!(second.net.unwrap().csum_bytes_cached, data.len() as u64);
        // And the kernel's cache saw exactly what the direct one did.
        prop_assert_eq!(k.cksum.stats().bytes_computed, cache.stats().bytes_computed);
        prop_assert_eq!(k.cksum.stats().bytes_cached, cache.stats().bytes_cached);
        prop_assert_eq!(k.cksum.stats().hits, cache.stats().hits);
    }

    /// Pipes behind descriptors preserve content under arbitrary
    /// chunked writes with flow control (`ShortIo` carries progress).
    #[test]
    fn pipe_fd_stream_preserves_bytes_under_flow_control(
        data in proptest::collection::vec(any::<u8>(), 1..200_000),
        mode_pick in any::<bool>(),
    ) {
        let mode = if mode_pick { PipeMode::ZeroCopy } else { PipeMode::Copy };
        let mut k = kernel();
        let a = k.spawn("writer");
        let b = k.spawn("reader");
        let (w, r) = k.pipe_between(a, b, mode);
        let pool = k.process(a).pool().clone();
        let agg = Aggregate::from_bytes(&pool, &data);
        let mut sent = 0u64;
        let mut received = Vec::new();
        while sent < agg.len() {
            let rest = agg.range(sent, agg.len() - sent).unwrap();
            let (n, _) = iolite::core::short_ok(k.iol_write_fd(a, w, &rest)).unwrap();
            sent += n;
            if let Ok((chunk, _)) = k.iol_read_fd(b, r, u64::MAX) {
                received.extend_from_slice(&chunk.to_vec());
            }
        }
        k.close_fd(a, w).unwrap();
        loop {
            let (chunk, _) = k.iol_read_fd(b, r, u64::MAX).unwrap();
            if chunk.is_empty() {
                break; // EOF
            }
            received.extend_from_slice(&chunk.to_vec());
        }
        prop_assert_eq!(received, data);
    }
}

//! Cross-crate semantic invariants: snapshot isolation, access control,
//! unified-cache sharing, and memory-accounting conservation.

use iolite::buf::{Acl, Aggregate, DomainId};
use iolite::core::{CostModel, Kernel};
use iolite::vm::MemAccount;

#[test]
fn iol_read_snapshots_survive_writes_and_evictions() {
    let mut k = Kernel::new(CostModel::pentium_ii_333());
    let pid = k.spawn("app");
    let f = k.create_file("/f", b"generation-one-content");
    let fd = k.open_file(pid, f);
    let (snap1, _) = k.iol_pread(pid, fd, 0, 100).unwrap();

    // Overwrite the file; take a second snapshot.
    let patch = Aggregate::from_bytes(k.process(pid).pool(), b"generation-TWO-content!");
    k.iol_pwrite(pid, fd, 0, &patch).unwrap();
    let (snap2, _) = k.iol_pread(pid, fd, 0, 100).unwrap();

    // Evict everything from the cache (budget to zero and back).
    k.cache.set_budget(0);
    k.cache.set_budget(u64::MAX);

    // Both snapshots still read their respective generations.
    assert_eq!(snap1.to_vec(), b"generation-one-content");
    assert_eq!(snap2.to_vec(), b"generation-TWO-content!");

    // A fresh read misses (evicted) but returns current content.
    let (now, out) = k.iol_pread(pid, fd, 0, 100).unwrap();
    assert!(!out.cache_hit);
    assert_eq!(now.to_vec(), b"generation-TWO-content!");
}

#[test]
fn concurrent_readers_share_one_physical_copy() {
    let mut k = Kernel::new(CostModel::pentium_ii_333());
    let a = k.spawn("reader-a");
    let b = k.spawn("reader-b");
    let f = k.create_synthetic_file("/shared", 100_000, 3);
    // Independent opens in two protection domains.
    let fd_a = k.open_file(a, f);
    let fd_b = k.open_file(b, f);
    let (agg_a, _) = k.iol_read_fd(a, fd_a, 100_000).unwrap();
    let (agg_b, _) = k.iol_read_fd(b, fd_b, 100_000).unwrap();
    // Same buffers, not equal copies.
    for (sa, sb) in agg_a.slices().zip(agg_b.slices()) {
        assert!(sa.same_buffer(sb));
    }
    // And the cache entry is the same storage too.
    let (agg_c, out) = k.iol_pread(a, fd_a, 0, 100_000).unwrap();
    assert!(out.cache_hit);
    assert!(agg_c.slice_at(0).same_buffer(agg_a.slice_at(0)));
}

#[test]
fn acl_denies_foreign_domains() {
    let mut k = Kernel::new(CostModel::pentium_ii_333());
    let owner = k.spawn("owner");
    let stranger = k.spawn("stranger");
    let private = k.create_pool(Acl::with_domain(owner.domain()));
    let secret = Aggregate::from_bytes(&private, b"secret bytes");
    // Transfer to the owner succeeds; to the stranger, denied.
    assert!(k
        .transfer_with_acl(&secret, owner.domain(), &private.acl())
        .is_ok());
    assert!(k
        .transfer_with_acl(&secret, stranger.domain(), &private.acl())
        .is_err());
    assert_eq!(k.window.stats().denials, 1);
    // The kernel itself always has access (§3.10).
    assert!(k
        .transfer_with_acl(&secret, DomainId::KERNEL, &private.acl())
        .is_ok());
}

#[test]
fn memory_accounts_are_conserved() {
    let mut k = Kernel::new(CostModel::pentium_ii_333());
    let pid = k.spawn("app");
    let total = k.physmem.total();
    // Load some files, squeeze, release, and verify accounting closes.
    for i in 0..20 {
        let f = k.create_synthetic_file(&format!("/f{i}"), 1 << 20, i);
        let fd = k.open_file(pid, f);
        k.iol_read_fd(pid, fd, 1 << 20).unwrap();
        k.close_fd(pid, fd).unwrap();
    }
    k.rebalance_cache();
    assert_eq!(
        k.physmem.held(MemAccount::FileCache),
        k.cache.resident_bytes()
    );
    assert!(k.physmem.used() <= total, "no phantom memory");

    k.physmem.reserve(MemAccount::SocketCopies, 100 << 20);
    k.rebalance_cache();
    // The cache shrank to fit.
    assert!(k.cache.resident_bytes() <= k.physmem.cache_budget());
    k.physmem.release(MemAccount::SocketCopies, 100 << 20);
    k.rebalance_cache();
    assert_eq!(k.physmem.held(MemAccount::SocketCopies), 0);
}

#[test]
fn mmap_cow_preserves_cache_snapshot() {
    let mut k = Kernel::new(CostModel::pentium_ii_333());
    let pid = k.spawn("app");
    let f = k.create_file("/f", &vec![9u8; 8192]);
    let fd = k.open_file(pid, f);
    // Reader takes an IOL snapshot; a mapper stores through mmap.
    let (snapshot, _) = k.iol_pread(pid, fd, 0, 8192).unwrap();
    let (mut view, _) = k.mmap_fd(pid, fd).unwrap();
    view.write(0, &[1, 2, 3]);
    // The store hit private COW pages, not the shared buffer.
    assert_eq!(snapshot.to_vec(), vec![9u8; 8192]);
    let mut first = [0u8; 4];
    view.read(0, &mut first);
    assert_eq!(first, [1, 2, 3, 9]);
    assert_eq!(view.stats().cow_faults, 1);
}

#[test]
fn pool_recycling_is_observable_system_wide() {
    // A chunk drained and reused must present a new generation to the
    // checksum cache through the whole stack.
    let mut k = Kernel::new(CostModel::pentium_ii_333());
    let pid = k.spawn("app");
    let pool = k.process(pid).pool().clone();
    let a1 = Aggregate::from_bytes(&pool, &[0xAAu8; 64 * 1024]);
    let s1 = a1.slice_at(0).clone();
    let sum1 = k.cksum.sum_for(&s1);
    let key1 = (s1.id(), s1.generation());
    drop((a1, s1));
    let a2 = Aggregate::from_bytes(&pool, &[0xBBu8; 64 * 1024]);
    let s2 = a2.slice_at(0).clone();
    assert_eq!(s2.id(), key1.0, "chunk address reused");
    assert_ne!(s2.generation(), key1.1, "generation bumped");
    let sum2 = k.cksum.sum_for(&s2);
    assert_ne!(sum1, sum2, "no stale checksum served");
    assert_eq!(k.cksum.stats().hits, 0);
}

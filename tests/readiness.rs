//! Readiness semantics end-to-end (PR 5): `iol_poll` edge cases at the
//! descriptor layer, and — property-checked — the guarantee that the
//! readiness-driven event loop serves **byte-identical responses with
//! identical checksum-cache state** to the sequential `serve_static`
//! path over the same request set, while multiplexing ≥ 1024
//! connections with zero busy-spin on `WouldBlock`.

use iolite::buf::Aggregate;
use iolite::core::{CostModel, Fd, IolError, Kernel, PollFd};
use iolite::fs::{CacheKey, Policy};
use iolite::http::event_loop::{EventLoopConfig, EventLoopServer, CGI_PREFIX};
use iolite::http::server::{serve_static, ServerKind};
use iolite::http::{response_header, CgiProcess};
use iolite::ipc::PipeMode;
use iolite::net::BufferMode;
use proptest::prelude::*;
use proptest::test_runner::ProptestConfig;

fn kernel() -> Kernel {
    Kernel::with_policy(CostModel::pentium_ii_333(), Policy::Gds)
}

// ---- iol_poll edge cases ------------------------------------------------

/// EOF on an empty, closed pipe: while a writer lives the empty pipe is
/// merely pending; once the last write end closes, buffered data stays
/// readable and `eof` appears only after the drain.
#[test]
fn poll_eof_on_empty_closed_pipe() {
    let mut k = kernel();
    let a = k.spawn("producer");
    let b = k.spawn("consumer");
    let (w, r) = k.pipe_between(a, b, PipeMode::ZeroCopy);
    let (ev, _) = k.iol_poll(b, &[PollFd::readable(r)]).unwrap();
    assert!(!ev[0].readable && !ev[0].eof, "open writer: just pending");
    let pool = k.process(a).pool().clone();
    k.iol_write_fd(a, w, &Aggregate::from_bytes(&pool, b"tail")).unwrap();
    k.close_fd(a, w).unwrap();
    // Closed but not yet drained: readable, not EOF.
    let (ev, _) = k.iol_poll(b, &[PollFd::readable(r)]).unwrap();
    assert!(ev[0].readable && !ev[0].eof);
    let (got, _) = k.iol_read_fd(b, r, 100).unwrap();
    assert_eq!(got.to_vec(), b"tail");
    // Empty + closed: EOF, and the read agrees.
    let (ev, _) = k.iol_poll(b, &[PollFd::readable(r)]).unwrap();
    assert!(ev[0].eof && !ev[0].readable);
    assert!(k.iol_read_fd(b, r, 100).unwrap().0.is_empty());
}

/// Writable-after-drain on both pipe and nonblocking socket: a full
/// buffer is not writable; draining it flips the readiness bit.
#[test]
fn poll_writable_after_drain() {
    let mut k = kernel();
    let a = k.spawn("producer");
    let b = k.spawn("consumer");
    let (w, r) = k.pipe_between(a, b, PipeMode::ZeroCopy);
    let pool = k.process(a).pool().clone();
    let fill = Aggregate::from_bytes(&pool, &[1u8; 64 * 1024]);
    k.iol_write_fd(a, w, &fill).unwrap();
    let (ev, _) = k.iol_poll(a, &[PollFd::writable(w)]).unwrap();
    assert!(!ev[0].writable, "full pipe is not writable");
    k.iol_read_fd(b, r, 1024).unwrap();
    let (ev, _) = k.iol_poll(a, &[PollFd::writable(w)]).unwrap();
    assert!(ev[0].writable, "reader drained: writable again");
    // Same transition on a nonblocking socket's send buffer.
    let sock = k.socket_create(a, BufferMode::ZeroCopy, 1460, 64 * 1024);
    k.set_nonblocking(a, sock, true).unwrap();
    iolite::core::short_ok(k.iol_write_fd(a, sock, &fill)).unwrap();
    let (ev, _) = k.iol_poll(a, &[PollFd::writable(sock)]).unwrap();
    assert!(!ev[0].writable, "Tss exhausted");
    k.socket_drain(a, sock, 16 * 1024).unwrap();
    let (ev, _) = k.iol_poll(a, &[PollFd::writable(sock)]).unwrap();
    assert!(ev[0].writable, "ACKed bytes free the buffer");
}

/// EPIPE readiness: the peer disappearing is itself an event — the
/// write end of a reader-less pipe and a peer-closed socket both
/// report `epipe` (and wake pollers of any interest).
#[test]
fn poll_epipe_readiness() {
    let mut k = kernel();
    let a = k.spawn("producer");
    let b = k.spawn("consumer");
    let (w, r) = k.pipe_between(a, b, PipeMode::ZeroCopy);
    let (ev, _) = k.iol_poll(a, &[PollFd::writable(w)]).unwrap();
    assert!(ev[0].writable && !ev[0].epipe);
    k.close_fd(b, r).unwrap();
    let (ev, _) = k.iol_poll(a, &[PollFd::writable(w)]).unwrap();
    assert!(ev[0].epipe && !ev[0].writable, "no reader left");
    assert!(ev[0].wakes(iolite::core::Interest::Writable));
    // Socket peer close reports epipe the same way.
    let sock = k.socket_create(a, BufferMode::ZeroCopy, 1460, 64 * 1024);
    k.socket_peer_close(a, sock).unwrap();
    let (ev, _) = k.iol_poll(a, &[PollFd::writable(sock)]).unwrap();
    assert!(ev[0].epipe && ev[0].eof);
    let pool = k.process(a).pool().clone();
    let msg = Aggregate::from_bytes(&pool, b"late");
    assert_eq!(k.iol_write_fd(a, sock, &msg), Err(IolError::Closed));
}

// ---- the acceptance bar: ≥1024-way multiplexing, CGI included ----------

/// 1024 static connections plus a CGI contingent, all in flight at
/// once, all served through `iol_poll` with zero busy-spin.
#[test]
fn multiplexes_1024_connections_with_zero_busy_spin() {
    let mut k = kernel();
    let pid = k.spawn("server");
    k.create_synthetic_file("/hot", 30_000, 5);
    k.create_synthetic_file("/warm", 8_000, 6);
    let cgi = CgiProcess::new(&mut k, pid, 12_000, PipeMode::ZeroCopy);
    let mut scripts: Vec<Vec<String>> = (0..1024)
        .map(|i| {
            vec![if i % 3 == 0 { "/warm" } else { "/hot" }.to_string()]
        })
        .collect();
    for _ in 0..8 {
        scripts.push(vec![format!("{CGI_PREFIX}doc")]);
    }
    let cfg = EventLoopConfig {
        drain_per_tick: 16 * 1024,
        ..EventLoopConfig::default()
    };
    let (report, kernel) = EventLoopServer::new(k, pid, scripts, Some(cgi), cfg).run();
    assert_eq!(report.stats.completed, 1032);
    assert_eq!(report.stats.failed, 0);
    assert_eq!(
        report.stats.blocked_io, 0,
        "readiness-driven multiplexing must never spin on WouldBlock"
    );
    assert!(
        report.stats.max_inflight >= 1032,
        "all connections in flight at once, got {}",
        report.stats.max_inflight
    );
    // Documents went through the cache; every transmission pin drained.
    for path in ["/hot", "/warm"] {
        let file = kernel.store.lookup(path).unwrap();
        assert_eq!(kernel.cache.pins(&CacheKey::whole(file)), 0);
    }
}

/// The CGI regression through the loop: the server's read end closes
/// *mid-transfer*; that request fails with EPIPE, queued CGI requests
/// fail in turn (the pipe is gone for good), static traffic completes.
#[test]
fn cgi_reader_hangup_fails_requests_without_killing_the_loop() {
    let mut k = kernel();
    let pid = k.spawn("server");
    k.create_synthetic_file("/static", 20_000, 3);
    // 200KB document: the pipe transfer takes several fill/drain rounds.
    let cgi = CgiProcess::new(&mut k, pid, 200_000, PipeMode::ZeroCopy);
    let rfd = cgi.server_read_fd();
    let scripts = vec![
        vec![format!("{CGI_PREFIX}doc")],
        vec![format!("{CGI_PREFIX}doc")],
        vec!["/static".to_string()],
    ];
    let mut server = EventLoopServer::new(k, pid, scripts, Some(cgi), EventLoopConfig::default());
    // Let the transfer get going, then hang up the server's read end.
    for _ in 0..3 {
        server.tick();
    }
    server.kernel_mut().close_fd(pid, rfd).unwrap();
    let (report, _) = server.run();
    assert_eq!(report.stats.failed, 2, "both CGI requests fail with EPIPE");
    assert_eq!(report.stats.completed, 1, "static traffic is unaffected");
    assert_eq!(report.stats.blocked_io, 0);
}

// ---- event loop ≡ sequential serve_static -------------------------------

/// Builds a kernel + corpus; returns (kernel, pid, paths).
fn corpus(sizes: &[u64]) -> (Kernel, iolite::core::Pid, Vec<String>) {
    let mut k = kernel();
    let pid = k.spawn("server");
    let paths: Vec<String> = sizes
        .iter()
        .enumerate()
        .map(|(i, &bytes)| {
            let path = format!("/f{i:05}");
            k.create_synthetic_file(&path, bytes, 0x10_0000 + i as u64);
            path
        })
        .collect();
    (k, pid, paths)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Over a random corpus and random per-connection scripts, the
    /// event loop's responses are byte-identical to `header ++ body`
    /// ground truth, and the checksum cache ends in exactly the state a
    /// sequential `serve_static` pass over the same requests produces
    /// (same hits/misses/bytes, same resident entries).
    #[test]
    fn event_loop_matches_sequential_serving(
        sizes in proptest::collection::vec(1u64..150_000, 1..5),
        picks in proptest::collection::vec(any::<u64>(), 1..10),
        conns in 1usize..5,
        drain_kb in 4u64..64,
    ) {
        // Deal the request picks onto `conns` round-robin scripts.
        let (k1, pid1, paths) = corpus(&sizes);
        let mut scripts: Vec<Vec<String>> = vec![Vec::new(); conns];
        for (j, pick) in picks.iter().enumerate() {
            scripts[j % conns].push(paths[(*pick % paths.len() as u64) as usize].clone());
        }
        let cfg = EventLoopConfig {
            drain_per_tick: drain_kb * 1024,
            capture_responses: true,
            ..EventLoopConfig::default()
        };
        let (report, k1) =
            EventLoopServer::new(k1, pid1, scripts.clone(), None, cfg).run();
        prop_assert_eq!(report.stats.failed, 0);
        prop_assert_eq!(report.stats.blocked_io, 0, "no busy-spin, ever");
        prop_assert_eq!(report.stats.completed as usize, picks.len());

        // Byte-identical responses against ground truth.
        for req in &report.requests {
            let file = k1.store.lookup(&req.path).expect("corpus file");
            let flen = k1.store.len(file).unwrap();
            let expected_body = k1.store.read(file, 0, flen).unwrap();
            let mut expected = response_header(flen, true);
            expected.extend_from_slice(&expected_body);
            prop_assert_eq!(
                req.response.as_ref().expect("captured"),
                &expected,
                "response for {} must match header ++ body",
                req.path
            );
        }

        // Sequential reference: the same request multiset through
        // serve_static on a fresh kernel.
        let (mut k2, pid2, paths2) = corpus(&sizes);
        prop_assert_eq!(&paths, &paths2);
        let file_fds: Vec<Fd> = paths
            .iter()
            .map(|p| {
                let id = k2.store.lookup(p).unwrap();
                k2.open_file(pid2, id)
            })
            .collect();
        let socks: Vec<Fd> = (0..conns)
            .map(|_| {
                k2.socket_create(pid2, BufferMode::ZeroCopy, k2.cost.mss, k2.cost.tss)
            })
            .collect();
        let mut seq_bytes = 0u64;
        let mut seq_hits = 0u64;
        for (c, script) in scripts.iter().enumerate() {
            for path in script {
                let idx = paths.iter().position(|p| p == path).unwrap();
                let rc = serve_static(
                    &mut k2,
                    ServerKind::FlashLite,
                    socks[c],
                    pid2,
                    file_fds[idx],
                );
                seq_bytes += rc.response_bytes;
                seq_hits += u64::from(rc.cache_hit);
                if let Some(key) = rc.pin_key {
                    k2.cache.unpin(&key);
                }
            }
        }
        prop_assert_eq!(report.stats.response_bytes, seq_bytes);
        prop_assert_eq!(report.stats.cache_hits, seq_hits);
        // Identical checksum-cache state: the chunk-streamed sends hit
        // exactly the slice keys a whole-response send would.
        prop_assert_eq!(k1.cksum.stats(), k2.cksum.stats());
        prop_assert_eq!(k1.cksum.len(), k2.cksum.len());
    }
}

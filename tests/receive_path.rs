//! The full inbound pipeline: wire segments → early demux → per-pool
//! placement → zero-copy reassembly → HTTP parsing; plus multi-CGI
//! pool isolation (§3.6, §3.10).

use iolite::buf::{Acl, Aggregate, BufferPool, DomainId, PoolId};
use iolite::core::{CostModel, Kernel};
use iolite::http::{parse_request_agg, request_bytes, CgiProcess, ServerKind};
use iolite::ipc::PipeMode;
use iolite::net::{BufferMode, DEFAULT_MSS, DEFAULT_TSS};
use iolite::net::{FilterRule, RxPath, SegmentHeader, StreamId, TcpReceiver};

fn server_header(src_port: u16, seq: u32, len: u16) -> SegmentHeader {
    SegmentHeader {
        src_ip: 0x0A00_0001,
        dst_ip: 0x0A00_0002,
        src_port,
        dst_port: 80,
        seq,
        ack: 0,
        flags: 0x18,
        payload_len: len,
    }
}

#[test]
fn request_travels_wire_to_parser_zero_copy() {
    // A client's HTTP request arrives as out-of-order TCP segments; the
    // driver demuxes each into the server's pool, the receiver
    // reassembles by reference, and the parser sees the exact bytes.
    let mut rx = RxPath::new();
    rx.filter_mut().add_rule(FilterRule {
        dst_port: 80,
        src_ip: None,
        src_port: None,
        stream: StreamId(7),
    });
    let server_pool = BufferPool::new(PoolId(3), Acl::with_domain(DomainId(1)), 64 * 1024);
    rx.bind_stream(StreamId(7), server_pool);

    let request = request_bytes("/f00042", true);
    let mid = request.len() / 2;
    let mut receiver = TcpReceiver::new(0);

    // Second half first.
    let (agg2, copied2) = rx.receive(
        &server_header(5000, mid as u32, (request.len() - mid) as u16),
        &request[mid..],
    );
    assert!(!copied2);
    receiver.on_segment(mid as u64, agg2);
    assert!(receiver.read_available().is_none(), "hole before it");

    let (agg1, copied1) = rx.receive(&server_header(5000, 0, mid as u16), &request[..mid]);
    assert!(!copied1);
    receiver.on_segment(0, agg1);

    let assembled = receiver.read_available().unwrap();
    assert_eq!(assembled.to_vec(), request);
    // Header scan straight off the fragmented aggregate: no
    // materialization between the wire and the parser.
    let parsed = parse_request_agg(&assembled).unwrap();
    assert_eq!(parsed.path, "/f00042");
    assert!(parsed.keep_alive);
    assert_eq!(rx.stats().bytes_copied, 0, "nothing copied end to end");
}

#[test]
fn send_and_receive_compose_byte_exact() {
    // Serve a document, put its segments "on the wire", reassemble on
    // the client side in reverse order: bytes must match the store.
    let mut k = Kernel::new(CostModel::pentium_ii_333());
    let pid = k.spawn("server");
    let file = k.create_synthetic_file("/doc", 10_000, 4);
    let expected = k.store.read(file, 0, 10_000).unwrap();
    let fd = k.open_file(pid, file);
    let (body, _) = k.iol_read_fd(pid, fd, 10_000).unwrap();

    let sock = k.socket_create(pid, BufferMode::ZeroCopy, DEFAULT_MSS, DEFAULT_TSS);
    let (mut segments, _) = k.socket_transmit_segments(pid, sock, &body).unwrap();
    segments.reverse(); // Worst-case delivery order.

    let mut receiver = TcpReceiver::new(1); // build_segments starts at seq 1.
    for chain in &segments {
        let wire = chain.to_vec();
        let h = SegmentHeader::parse(&wire).unwrap();
        let pool = BufferPool::new(PoolId(9), Acl::kernel_only(), 64 * 1024);
        let payload = Aggregate::from_bytes(&pool, &wire[40..]);
        receiver.on_segment(h.seq as u64, payload);
    }
    let got = receiver.read_available().unwrap();
    assert_eq!(got.to_vec(), expected);
    assert!(
        receiver.stats().out_of_order > 0,
        "order was actually reversed"
    );
}

#[test]
fn cgi_instances_have_isolated_pools() {
    // §3.10: "the server process and every CGI application instance
    // have separate buffer pools with different ACLs."
    let mut k = Kernel::new(CostModel::pentium_ii_333());
    let server = k.spawn("server");
    let cgi_a = CgiProcess::new(&mut k, server, 10_000, PipeMode::ZeroCopy);
    let cgi_b = CgiProcess::new(&mut k, server, 10_000, PipeMode::ZeroCopy);

    // Each CGI's pool admits itself and the server — not its sibling.
    assert!(cgi_a.pool.acl().allows(cgi_a.pid.domain()));
    assert!(cgi_a.pool.acl().allows(server.domain()));
    assert!(!cgi_a.pool.acl().allows(cgi_b.pid.domain()));

    // The kernel refuses to map A's output into B.
    let doc = cgi_a.document().clone();
    assert!(k
        .transfer_with_acl(&doc, cgi_b.pid.domain(), &cgi_a.pool.acl())
        .is_err());
    assert!(k
        .transfer_with_acl(&doc, server.domain(), &cgi_a.pool.acl())
        .is_ok());
}

/// The kernel-enforced pipe ACL (§3.10): a sibling CGI that gets hold
/// of a descriptor to another CGI's pipe is *denied* the zero-copy
/// read — and, crucially, the denial destroys nothing: the data is
/// still there for the legitimate server reader afterwards.
#[test]
fn sibling_cgi_is_denied_the_pipe_without_destroying_data() {
    use iolite::core::IolError;

    let mut k = Kernel::new(CostModel::pentium_ii_333());
    let server = k.spawn("server");
    let cgi_a = CgiProcess::new(&mut k, server, 1_000, PipeMode::ZeroCopy);
    let cgi_b = CgiProcess::new(&mut k, server, 1_000, PipeMode::ZeroCopy);

    // A queues a message for the server.
    let doc = cgi_a.document().clone();
    let part = doc.range(0, 100).unwrap();
    let wfd = cgi_a.write_fd();
    k.iol_write_fd(cgi_a.pid, wfd, &part).unwrap();

    // B (not on A's pool ACL) inherits a descriptor to A's pipe read
    // end — say through a leaked fork — and tries to read it.
    let server_rfd = cgi_a.server_read_fd();
    let obj = k.fd_object(server, server_rfd).expect("read end resolves");
    let leaked = k.install_fd(cgi_b.pid, obj);
    let denied = k.iol_read_fd(cgi_b.pid, leaked, u64::MAX).unwrap_err();
    assert_eq!(
        denied,
        IolError::PermissionDenied {
            domain: cgi_b.pid.domain()
        }
    );

    // The denial destroyed nothing: the server still reads every byte.
    let (got, _) = k.iol_read_fd(server, server_rfd, u64::MAX).unwrap();
    assert_eq!(got.to_vec(), part.to_vec());
}

#[test]
fn two_cgi_processes_serve_distinct_content_through_one_server() {
    let mut k = Kernel::new(CostModel::pentium_ii_333());
    let server = k.spawn("server");
    let mut cgi_a = CgiProcess::new(&mut k, server, 5_000, PipeMode::ZeroCopy);
    let mut cgi_b = CgiProcess::new(&mut k, server, 7_000, PipeMode::ZeroCopy);
    let sock = k.socket_create(server, BufferMode::ZeroCopy, DEFAULT_MSS, DEFAULT_TSS);

    let ra = cgi_a
        .serve(&mut k, ServerKind::FlashLite, sock, server)
        .expect("healthy pipe");
    let rb = cgi_b
        .serve(&mut k, ServerKind::FlashLite, sock, server)
        .expect("healthy pipe");
    assert!(rb.response_bytes > ra.response_bytes);
    // Still zero copies anywhere.
    assert_eq!(k.metrics.bytes_copied, 0);
    // Both CGIs' chunks are now mapped in the server, independently.
    let chunk_a = cgi_a.document().slice_at(0).id().chunk;
    let chunk_b = cgi_b.document().slice_at(0).id().chunk;
    assert!(k.window.is_mapped(chunk_a, server.domain()));
    assert!(k.window.is_mapped(chunk_b, server.domain()));
}

//! End-to-end data-path integrity: the bytes a client reassembles from
//! TCP segments must equal the bytes on disk, through every server
//! model, the CGI path, and both pipe modes — all of it driven through
//! the descriptor-based IOL API (files, pipes, and sockets behind fds).

use iolite::buf::Aggregate;
use iolite::core::{CostModel, Kernel};
use iolite::http::{parse_request, request_bytes, response_header, CgiProcess, ServerKind};
use iolite::ipc::PipeMode;
use iolite::net::{BufferMode, SegmentHeader, DEFAULT_MSS, DEFAULT_TSS};

/// Reassembles the payload bytes of a segment stream.
fn reassemble(chains: &[iolite::net::MbufChain]) -> Vec<u8> {
    let mut out = Vec::new();
    for chain in chains {
        let wire = chain.to_vec();
        let h = SegmentHeader::parse(&wire).expect("valid header");
        assert_eq!(h.payload_len as usize, wire.len() - 40);
        out.extend_from_slice(&wire[40..]);
    }
    out
}

#[test]
fn static_file_reaches_client_byte_exact_zero_copy() {
    let mut k = Kernel::new(CostModel::pentium_ii_333());
    let pid = k.spawn("server");
    let file = k.create_synthetic_file("/doc", 150_000, 99);
    let disk_bytes = k.store.read(file, 0, 150_000).unwrap();

    // The Flash-Lite path: IOL_read on the document fd, concat header,
    // segment on the socket fd.
    let fd = k.open_file(pid, file);
    let (body, _) = k.iol_read_fd(pid, fd, 150_000).unwrap();
    let header = response_header(body.len(), false);
    let mut response = Aggregate::from_bytes(k.process(pid).pool(), &header);
    response.append(&body);

    let sock = k.socket_create(pid, BufferMode::ZeroCopy, DEFAULT_MSS, DEFAULT_TSS);
    let (segments, _) = k.socket_transmit_segments(pid, sock, &response).unwrap();
    let received = reassemble(&segments);
    assert_eq!(&received[..header.len()], &header[..]);
    assert_eq!(&received[header.len()..], &disk_bytes[..]);
    // Zero-copy: the segments own only their 40-byte headers.
    let owned: usize = segments.iter().map(|c| c.owned_bytes()).sum();
    assert_eq!(owned, segments.len() * 40);
}

#[test]
fn static_file_reaches_client_byte_exact_copy_mode() {
    let mut k = Kernel::new(CostModel::pentium_ii_333());
    let pid = k.spawn("server");
    let file = k.create_synthetic_file("/doc", 80_000, 5);
    let disk_bytes = k.store.read(file, 0, 80_000).unwrap();
    let fd = k.open_file(pid, file);
    let (body, _) = k.iol_read_fd(pid, fd, 80_000).unwrap();

    let sock = k.socket_create(pid, BufferMode::Copy, DEFAULT_MSS, DEFAULT_TSS);
    let (segments, _) = k.socket_transmit_segments(pid, sock, &body).unwrap();
    assert_eq!(reassemble(&segments), disk_bytes);
    // Copy mode: the segments own the payload too.
    let owned: usize = segments.iter().map(|c| c.owned_bytes()).sum();
    assert_eq!(owned, segments.len() * 40 + 80_000);
}

#[test]
fn cgi_document_reaches_server_byte_exact_via_both_pipe_modes() {
    for mode in [PipeMode::Copy, PipeMode::ZeroCopy] {
        let mut k = Kernel::new(CostModel::pentium_ii_333());
        let server = k.spawn("server");
        let cgi = CgiProcess::new(&mut k, server, 50_000, mode);
        let expected = cgi.document().to_vec();

        // Push the document through the CGI's own descriptor pair,
        // exactly as the request path does.
        let (wfd, rfd) = (cgi.write_fd(), cgi.server_read_fd());
        let mut received = Vec::new();
        let mut offset = 0u64;
        while offset < expected.len() as u64 {
            let rest = cgi
                .document()
                .range(offset, expected.len() as u64 - offset)
                .unwrap();
            let (n, _) = iolite::core::short_ok(k.iol_write_fd(cgi.pid, wfd, &rest)).unwrap();
            offset += n;
            if let Ok((chunk, _)) = k.iol_read_fd(server, rfd, u64::MAX) {
                received.extend_from_slice(&chunk.to_vec());
            }
        }
        assert_eq!(received, expected, "mode {mode:?}");
    }
}

#[test]
fn http_messages_round_trip_through_parser() {
    let req = request_bytes("/f00042", true);
    let parsed = parse_request(&req).unwrap();
    assert_eq!(parsed.path, "/f00042");
    assert!(parsed.keep_alive);
}

#[test]
fn checksum_cache_agrees_with_reference_over_server_path() {
    use iolite::net::checksum::reference_checksum;
    use iolite::net::internet_checksum;

    let mut k = Kernel::new(CostModel::pentium_ii_333());
    let pid = k.spawn("server");
    let file = k.create_synthetic_file("/doc", 30_000, 17);
    let fd = k.open_file(pid, file);
    let (body, _) = k.iol_read_fd(pid, fd, 30_000).unwrap();
    let direct = k.store.read(file, 0, 30_000).unwrap();
    assert_eq!(internet_checksum(&body), reference_checksum(&direct));
}

#[test]
fn serve_static_is_deterministic_across_kernels() {
    for kind in [ServerKind::Flash, ServerKind::FlashLite, ServerKind::Apache] {
        let run = || {
            let mut k = Kernel::new(CostModel::pentium_ii_333());
            let pid = k.spawn("server");
            let f = k.create_synthetic_file("/d", 40_000, 1);
            let fd = k.open_file(pid, f);
            let sock = k.socket_create(pid, kind.buffer_mode(), DEFAULT_MSS, DEFAULT_TSS);
            let a = iolite::http::server::serve_static(&mut k, kind, sock, pid, fd);
            let b = iolite::http::server::serve_static(&mut k, kind, sock, pid, fd);
            (a.cpu_total(), b.cpu_total(), a.response_bytes)
        };
        assert_eq!(run(), run(), "{kind:?}");
    }
}

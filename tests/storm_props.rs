//! Storm acceptance properties (PR 9): the adversarial-wire harness is
//! deterministic, journaled, and — crucially — *invisible to the
//! application*. Under ≥1% loss with reordering, duplication, and
//! slowloris clients, every connection's responses are byte-identical
//! to a clean sequential run over the ideal internal wire, the
//! checksum-cache profile is identical, and the server never blocks on
//! I/O.

use iolite::core::{shard_of_conn, ConnId, CostModel, Kernel};
use iolite::fs::Policy;
use iolite::http::event_loop::{EventLoopConfig, EventLoopServer, LoopReport};
use iolite::storm::{plan, run_storm, StormConfig};

/// Rebuilds the storm's exact per-shard workload (corpus, scripts,
/// shard partition) and serves it over the ideal *internal* wire —
/// the clean sequential baseline the storm must match.
fn clean_baseline(cfg: &StormConfig) -> Vec<(LoopReport, Kernel)> {
    let p = plan(cfg);
    let cost = CostModel::pentium_ii_333();
    let mut shard_scripts: Vec<Vec<Vec<String>>> = vec![Vec::new(); cfg.shards];
    for c in 0..cfg.clients {
        let s = shard_of_conn(ConnId(p.conn_ids[c]), cfg.shards);
        shard_scripts[s].push(p.scripts[c].clone());
    }
    shard_scripts
        .into_iter()
        .map(|scripts| {
            let mut kernel = Kernel::with_policy(cost, Policy::Gds);
            let pid = kernel.spawn("storm-server");
            for (i, bytes) in p.file_sizes.iter().enumerate() {
                kernel.create_synthetic_file(&format!("/f{i}"), *bytes, i as u64);
            }
            let loop_cfg = EventLoopConfig {
                capture_responses: true,
                ..EventLoopConfig::default()
            };
            EventLoopServer::new(kernel, pid, scripts, None, loop_cfg).run()
        })
        .collect()
}

/// Per-connection ordered `(path, response bytes)` sequences.
fn per_conn(report: &LoopReport, conns: usize) -> Vec<Vec<(String, Vec<u8>)>> {
    let mut out = vec![Vec::new(); conns];
    for r in &report.requests {
        out[r.conn].push((
            r.path.clone(),
            r.response.clone().expect("capture_responses was on"),
        ));
    }
    out
}

fn assert_storm_matches_clean(cfg: &StormConfig) {
    assert!(
        cfg.loss >= 0.01 && cfg.reorder > 0.0 && cfg.slowloris > 0.0,
        "this property is about a genuinely hostile wire"
    );
    let storm = run_storm(cfg);
    assert_eq!(storm.violations, Vec::<String>::new());
    assert_eq!(
        storm.completed(),
        (cfg.clients * cfg.requests_per_client) as u64,
        "no resets/churn: every scripted request must complete"
    );
    let baseline = clean_baseline(cfg);
    for (s, (clean_report, clean_kernel)) in baseline.iter().enumerate() {
        // The server never blocked on I/O, storm or not.
        assert_eq!(storm.reports[s].stats.blocked_io, 0);
        assert_eq!(clean_report.stats.blocked_io, 0);
        // Byte-identical responses, per connection, in order.
        let conns = storm.conn_counts[s];
        assert_eq!(
            per_conn(&storm.reports[s], conns),
            per_conn(clean_report, conns),
            "shard {s}: storm responses diverge from the clean run"
        );
        // Identical checksum-cache profile: the loss/reorder/slowloris
        // wire changed *when* bytes moved, never *what* was checksummed
        // or how much of it the checksum cache absorbed.
        assert_eq!(
            storm.metrics[s].bytes_checksummed,
            clean_kernel.metrics.bytes_checksummed,
            "shard {s}: checksummed bytes diverge"
        );
        assert_eq!(
            storm.metrics[s].bytes_checksum_cached,
            clean_kernel.metrics.bytes_checksum_cached,
            "shard {s}: checksum-cache hits diverge"
        );
    }
}

#[test]
fn same_seed_is_bit_identical() {
    for mk in [
        StormConfig::hostile,
        StormConfig::chaos,
        (|s| StormConfig {
            shards: 2,
            ..StormConfig::chaos(s)
        }) as fn(u64) -> StormConfig,
    ] {
        let a = run_storm(&mk(42));
        let b = run_storm(&mk(42));
        assert_eq!(a.state_hashes, b.state_hashes);
        assert_eq!(a.metrics, b.metrics);
        assert_eq!(a.wire, b.wire);
        assert_eq!(a.sim_time, b.sim_time);
        for (ra, rb) in a.reports.iter().zip(&b.reports) {
            assert_eq!(ra.stats, rb.stats);
        }
    }
}

#[test]
fn storm_run_replays_exactly_single_shard() {
    let report = run_storm(&StormConfig::hostile(11));
    assert_eq!(report.violations, Vec::<String>::new());
    report.verify_replay().expect("journal replay");
}

#[test]
fn storm_run_replays_exactly_two_shards() {
    let cfg = StormConfig {
        shards: 2,
        ..StormConfig::hostile(12)
    };
    let report = run_storm(&cfg);
    assert_eq!(report.violations, Vec::<String>::new());
    report.verify_replay().expect("journal replay");
}

#[test]
fn hostile_storm_matches_clean_run() {
    let cfg = StormConfig {
        capture_responses: true,
        ..StormConfig::hostile(13)
    };
    assert_storm_matches_clean(&cfg);
}

#[test]
fn hostile_storm_matches_clean_run_two_shards() {
    let cfg = StormConfig {
        shards: 2,
        capture_responses: true,
        ..StormConfig::hostile(14)
    };
    assert_storm_matches_clean(&cfg);
}

//! Failure injection: every error path a user of the public API can
//! hit must fail loudly, precisely, and without corrupting state.

use iolite::buf::{Acl, Aggregate, BufError, BufferPool, PoolId};
use iolite::core::{CostModel, Fd, IolError, Kernel, Whence};
use iolite::ipc::{Pipe, PipeMode};
use iolite::net::SegmentHeader;

#[test]
fn oversized_allocation_is_rejected_not_truncated() {
    let pool = BufferPool::new(PoolId(1), Acl::kernel_only(), 4096);
    let err = pool.alloc(4097).unwrap_err();
    assert_eq!(
        err,
        BufError::TooLarge {
            requested: 4097,
            max: 4096
        }
    );
    // The pool remains usable.
    assert!(pool.alloc(4096).is_ok());
    assert_eq!(pool.stats().allocs, 1);
}

#[test]
fn aggregate_range_errors_are_precise() {
    let pool = BufferPool::new(PoolId(1), Acl::kernel_only(), 4096);
    let agg = Aggregate::from_bytes(&pool, b"12345");
    match agg.range(3, 3) {
        Err(BufError::OutOfRange {
            requested,
            available,
        }) => {
            assert_eq!(requested, 6);
            assert_eq!(available, 5);
        }
        other => panic!("expected OutOfRange, got {other:?}"),
    }
    // replace past the end fails and leaves the aggregate intact.
    assert!(agg.replace(&pool, 4, 2, b"xx").is_err());
    assert_eq!(agg.to_vec(), b"12345");
}

#[test]
fn shared_buffer_refuses_in_place_mutation() {
    let pool = BufferPool::new(PoolId(1), Acl::kernel_only(), 4096);
    let agg = Aggregate::from_bytes(&pool, b"shared");
    let mut s1 = agg.slice_at(0).clone();
    // The aggregate still holds a reference.
    assert_eq!(
        s1.try_mutate_in_place(|_| panic!("must not run")),
        Err(BufError::Shared)
    );
    // Value untouched.
    assert_eq!(agg.to_vec(), b"shared");
}

#[test]
fn acl_denial_leaves_no_mapping_behind() {
    let mut k = Kernel::new(CostModel::pentium_ii_333());
    let owner = k.spawn("owner");
    let intruder = k.spawn("intruder");
    let pool = k.create_pool(Acl::with_domain(owner.domain()));
    let secret = Aggregate::from_bytes(&pool, b"top secret");
    let chunk = secret.slice_at(0).id().chunk;

    let denied = k.transfer_with_acl(&secret, intruder.domain(), &pool.acl());
    assert!(denied.is_err());
    assert_eq!(denied.unwrap_err().domain, intruder.domain());
    assert!(
        !k.window.is_mapped(chunk, intruder.domain()),
        "denial must not leak a mapping"
    );
    // The owner still transfers fine afterwards.
    assert!(k
        .transfer_with_acl(&secret, owner.domain(), &pool.acl())
        .is_ok());
}

#[test]
fn unknown_descriptors_and_paths_fail_precisely() {
    let mut k = Kernel::new(CostModel::pentium_ii_333());
    let pid = k.spawn("app");
    // A descriptor that was never opened is EBADF, not garbage data.
    let ghost = Fd(9999);
    assert!(matches!(
        k.iol_read_fd(pid, ghost, 100),
        Err(IolError::NotOpen { .. })
    ));
    assert!(matches!(
        k.posix_read_fd(pid, ghost, 100),
        Err(IolError::NotOpen { .. })
    ));
    assert!(matches!(
        k.lseek(pid, ghost, 0, Whence::Set),
        Err(IolError::NotOpen { .. })
    ));
    assert!(k.dup_fd(pid, ghost).is_err());
    assert!(k.close_fd(pid, ghost).is_err());
    // A missing path is ENOENT at open; the raw lookup agrees.
    assert_eq!(k.open(pid, "/no/such/file"), Err(IolError::NotFound));
    assert_eq!(k.lookup("/no/such/file").0, None);
    // A descriptor opened on a file that was never stored reads empty
    // (the store treats unknown ids as empty objects), not fatally.
    let fd = k.open_file(pid, iolite::fs::FileId(9999));
    let (agg, out) = k.iol_read_fd(pid, fd, 100).unwrap();
    assert!(agg.is_empty());
    assert!(!out.cache_hit);
}

#[test]
fn wrong_kind_descriptors_are_bad_fd_kind() {
    let mut k = Kernel::new(CostModel::pentium_ii_333());
    let pid = k.spawn("app");
    let (r, w) = k.pipe_fds(pid, PipeMode::ZeroCopy);
    let pool = BufferPool::new(PoolId(77), Acl::kernel_only(), 4096);
    let msg = Aggregate::from_bytes(&pool, b"x");
    // Reading a write end / writing a read end.
    assert!(matches!(
        k.iol_read_fd(pid, w, 10),
        Err(IolError::BadFdKind { .. })
    ));
    assert!(matches!(
        k.iol_write_fd(pid, r, &msg),
        Err(IolError::BadFdKind { .. })
    ));
    // Seeking or mmapping a pipe (ESPIPE).
    assert!(matches!(
        k.lseek(pid, r, 0, Whence::Set),
        Err(IolError::BadFdKind { .. })
    ));
    assert!(matches!(k.mmap_fd(pid, r), Err(IolError::BadFdKind { .. })));
    assert!(k.fd_len(pid, r).is_err());
}

#[test]
fn pipe_misuse_is_contained() {
    // Reading an empty pipe is EAGAIN, not an error.
    let mut p = Pipe::new(PipeMode::ZeroCopy, 64);
    assert!(p.read(10).is_none());
    // Zero-length reads never dequeue.
    let pool = BufferPool::new(PoolId(1), Acl::kernel_only(), 4096);
    p.write(&Aggregate::from_bytes(&pool, b"x"));
    assert!(p.read(0).is_none());
    assert_eq!(p.buffered(), 1);
    // Writing to a full pipe accepts zero bytes and counts the event.
    let big = Aggregate::from_bytes(&pool, &[0u8; 64]);
    p.write(&big);
    let accepted = p.write(&big);
    assert_eq!(accepted, 0);
    assert!(p.stats().full_events >= 1);
}

#[test]
#[should_panic(expected = "closed pipe")]
fn writing_a_closed_pipe_panics_like_epipe() {
    let mut p = Pipe::new(PipeMode::Copy, 64);
    p.close();
    let pool = BufferPool::new(PoolId(1), Acl::kernel_only(), 4096);
    p.write(&Aggregate::from_bytes(&pool, b"sigpipe"));
}

#[test]
fn malformed_packets_do_not_demux() {
    assert!(SegmentHeader::parse(&[]).is_none());
    assert!(SegmentHeader::parse(&[0u8; 39]).is_none());
    let mut ok = SegmentHeader {
        src_ip: 1,
        dst_ip: 2,
        src_port: 3,
        dst_port: 80,
        seq: 0,
        ack: 0,
        flags: 0,
        payload_len: 0,
    }
    .to_bytes();
    ok[9] = 17; // UDP, not TCP.
    assert!(SegmentHeader::parse(&ok).is_none());
}

#[test]
fn cache_budget_zero_still_serves_reads() {
    // A pathological memory squeeze must degrade, not break.
    let mut k = Kernel::new(CostModel::pentium_ii_333());
    let pid = k.spawn("app");
    let f = k.create_synthetic_file("/f", 50_000, 1);
    let fd = k.open_file(pid, f);
    k.physmem
        .reserve(iolite::vm::MemAccount::SocketCopies, u64::MAX / 2);
    k.rebalance_cache();
    let (a, o1) = k.iol_pread(pid, fd, 0, 50_000).unwrap();
    let (b, o2) = k.iol_pread(pid, fd, 0, 50_000).unwrap();
    // Every read misses (nothing fits), but data stays correct.
    assert!(!o1.cache_hit && !o2.cache_hit);
    assert!(a.content_eq(&b));
    assert_eq!(a.len(), 50_000);
}

#[test]
fn mmap_bounds_are_enforced() {
    let mut k = Kernel::new(CostModel::pentium_ii_333());
    let pid = k.spawn("app");
    let f = k.create_file("/f", b"abc");
    let fd = k.open_file(pid, f);
    let (mut view, _) = k.mmap_fd(pid, fd).unwrap();
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let mut buf = [0u8; 4];
        view.read(0, &mut buf);
    }));
    assert!(result.is_err(), "reading past the mapping must panic");
}

#[test]
fn empty_file_round_trips_everywhere() {
    let mut k = Kernel::new(CostModel::pentium_ii_333());
    let pid = k.spawn("app");
    let f = k.create_file("/empty", b"");
    let fd = k.open_file(pid, f);
    let (agg, _) = k.iol_read_fd(pid, fd, 100).unwrap();
    assert!(agg.is_empty());
    let (mut view, _) = k.mmap_fd(pid, fd).unwrap();
    assert!(view.read_all().is_empty());
    let (bytes, _) = k.posix_read_fd(pid, fd, 100).unwrap();
    assert!(bytes.is_empty());
}

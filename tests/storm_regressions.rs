//! Minimized storm seeds that once exposed bugs (PR 9). Each entry
//! pins a `StormConfig` that used to wedge, corrupt, or leak; the fix
//! is described at the test, and the seed stays forever.
//!
//! The randomized campaign lives here too: a short sweep of fresh
//! seeds every CI run (`STORM_CAMPAIGN` widens it), printing the
//! failing seed so it can be minimized and added above.

use iolite::storm::{campaign, run_storm, StormConfig};

/// Chaos seed 3 wedged the whole run: a slowloris client whose final
/// cumulative ACK was lost never re-ACKed the server's go-back-N
/// retransmissions (duplicates produce no consume beat once
/// `resp_consumed == resp_read`), so the server rewound and re-sent the
/// tail window forever — an infinite RTO chain, a connection parked in
/// `Draining`, and a transmission pin held on `/f2` for the rest of
/// time. Fixed by re-ACKing on every segment arrival (TCP's dup-ACK),
/// not only on consumption progress.
#[test]
fn chaos_seed_3_slowloris_lost_final_ack() {
    let report = run_storm(&StormConfig::chaos(3));
    assert_eq!(report.violations, Vec::<String>::new());
    report.verify_replay().expect("journal replay");
}

/// The same wedge reproduced under every-client slowloris with tiny
/// consume chunks — the harshest version of the lost-final-ACK dance.
#[test]
fn all_slowloris_tiny_chunks_terminate() {
    let cfg = StormConfig {
        slowloris: 1.0,
        slow_chunk: 64,
        ..StormConfig::hostile(3)
    };
    let report = run_storm(&cfg);
    assert_eq!(report.violations, Vec::<String>::new());
    assert_eq!(report.completed(), 16);
}

/// Writes seed 1009 caught replay divergence through snapshot lifetime
/// (PR 10): a PUT replaced a whole-file entry while readers still held
/// transmission pins, and the displaced aggregate's buffers were then
/// freed at a time decided by the *readers'* host-side clones — which
/// exist live but not under replay, so pool chunk release (and every
/// later allocation offset) diverged. Fixed by parking displaced
/// aggregates of pinned keys in the cache's limbo table until the
/// journaled unpin.
#[test]
fn writes_seed_1009_pinned_replacement_replays() {
    let report = run_storm(&StormConfig::writes(1009));
    assert_eq!(report.violations, Vec::<String>::new());
    report.verify_replay().expect("journal replay");
}

/// Writes seed 1015 caught the deeper version of the same class, down
/// to a 2-client 2-file run: the recorded journal itself holds every
/// `IolWriteFd` command's response aggregate, so its `Arc`s kept cache
/// chunks alive in the live run that replay (whose journal references
/// the live pool, not its own) let drain — in-op chunk scavenging
/// keyed off ambient refcounts could never replay. Fixed by making the
/// cache pool append-only: no `release_free_chunks` from pure ops.
#[test]
fn writes_seed_1015_journal_held_chunks_replay() {
    let minimized = StormConfig {
        clients: 2,
        files: 2,
        requests_per_client: 2,
        ..StormConfig::writes(1015)
    };
    for cfg in [minimized, StormConfig::writes(1015)] {
        let report = run_storm(&cfg);
        assert_eq!(report.violations, Vec::<String>::new());
        report.verify_replay().expect("journal replay");
    }
}

/// Sharded write-chaos seed 1 caught stale replicas: under `Replicate`
/// ownership a write routed to its home shard invalidated only the
/// *writer's* local copy, so a third shard's replica of the old bytes
/// survived to end of run (the cache-vs-store audit flagged it). Fixed
/// by a home-shard `Invalidate` broadcast after every committed write,
/// ordered behind any in-flight `RemoteData` by the per-pair FIFO.
#[test]
fn sharded_write_chaos_replicas_track_home() {
    let cfg = StormConfig {
        shards: 2,
        ..StormConfig::write_chaos(1)
    };
    let report = run_storm(&cfg);
    assert_eq!(report.violations, Vec::<String>::new());
    report.verify_replay().expect("journal replay");
}

/// Fixed-seed smoke: one run of each preset, plus a 2-shard chaos run,
/// must stay violation-free and replay exactly.
#[test]
fn fixed_seed_smoke() {
    for cfg in [
        StormConfig::calm(1),
        StormConfig::hostile(1),
        StormConfig::chaos(1),
        StormConfig {
            shards: 2,
            ..StormConfig::chaos(1)
        },
        StormConfig::writes(1),
        StormConfig::write_chaos(1),
        StormConfig {
            shards: 2,
            ..StormConfig::write_chaos(1)
        },
    ] {
        let report = run_storm(&cfg);
        assert_eq!(report.violations, Vec::<String>::new(), "cfg {cfg:?}");
        report.verify_replay().expect("journal replay");
    }
}

/// Randomized campaign. Default: a quick sweep fresh enough to catch
/// regressions; `STORM_CAMPAIGN=<n>` sweeps `n` seeds per preset. On
/// failure the panic names the preset and seed — minimize by shrinking
/// the config's knobs with that seed held fixed, then pin it above.
#[test]
fn randomized_campaign() {
    let n: u64 = std::env::var("STORM_CAMPAIGN")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(25);
    // Seeds rotate daily-ish via the campaign width only; the sweep
    // itself must stay deterministic, so the base is fixed.
    let sweep = |name: &str, mk: fn(u64) -> StormConfig| {
        if let Err((seed, violations)) = campaign(mk, 1000..1000 + n) {
            panic!(
                "storm campaign failed: preset={name} seed={seed}\n{}",
                violations.join("\n")
            );
        }
    };
    sweep("hostile", StormConfig::hostile);
    sweep("chaos", StormConfig::chaos);
    sweep("sharded-chaos", |s| StormConfig {
        shards: 2,
        ..StormConfig::chaos(s)
    });
    sweep("writes", StormConfig::writes);
    sweep("write-chaos", StormConfig::write_chaos);
    sweep("sharded-write-chaos", |s| StormConfig {
        shards: 2,
        ..StormConfig::write_chaos(s)
    });
}

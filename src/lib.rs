#![warn(missing_docs)]
//! # IO-Lite: a unified I/O buffering and caching system
//!
//! A Rust reproduction of Pai, Druschel & Zwaenepoel,
//! *"IO-Lite: A Unified I/O Buffering and Caching System"*
//! (OSDI '99 / ACM TOCS 18(1), 2000).
//!
//! IO-Lite stores all I/O data in **immutable buffers** shared read-only
//! by every subsystem — applications, IPC, the file cache, the network —
//! and manipulates it through **mutable buffer aggregates** (ordered
//! lists of ⟨pointer, length⟩ slices). This eliminates all redundant
//! copying and multiple buffering, and enables cross-subsystem
//! optimizations such as Internet-checksum caching.
//!
//! This crate is a facade re-exporting the workspace:
//!
//! | module | contents | paper |
//! |---|---|---|
//! | [`buf`] | immutable buffers, slices, aggregates, ACL'd pools | §3.1, §3.3, §4.5 |
//! | [`vm`] | the IO-Lite window, memory accounting, pageout, mmap | §3.7, §4.3 |
//! | [`fs`] | disk model, unified file cache, LRU/GDS policies | §3.5, §4.2 |
//! | [`net`] | mbufs, checksum cache, early demux, TCP model | §3.6, §3.9, §4.1 |
//! | [`ipc`] | copy-mode and zero-copy pipes / UNIX sockets | §3.2, §4.4 |
//! | [`core`] | the kernel facade, `IOL_read`/`IOL_write`, POSIX, costs | §3.4, §4 |
//! | [`http`] | Flash / Flash-Lite / Apache models + experiment driver | §3.10, §5 |
//! | [`trace`] | synthetic Rice traces (Figs. 7, 9) | §5.4–§5.5 |
//! | [`apps`] | converted UNIX utilities (Fig. 13) | §5.8 |
//! | [`sim`] | deterministic discrete-event substrate | — |
//! | [`storm`] | whole-system simulation: adversarial wire, fault storms | — |
//!
//! # Quick start
//!
//! ```
//! use iolite::buf::{Acl, Aggregate, BufferPool, DomainId, PoolId};
//!
//! // A pool whose buffers are readable by domain 1 (plus the kernel).
//! let pool = BufferPool::new(PoolId(1), Acl::with_domain(DomainId(1)), 64 * 1024);
//!
//! // Immutable data, mutable aggregates: mutation chains new buffers
//! // with untouched slices instead of copying.
//! let v1 = Aggregate::from_bytes(&pool, b"GET /old.html HTTP/1.0");
//! let v2 = v1.replace(&pool, 5, 3, b"new").unwrap();
//! assert_eq!(v2.to_vec(), b"GET /new.html HTTP/1.0");
//! assert_eq!(v1.to_vec(), b"GET /old.html HTTP/1.0"); // Snapshot intact.
//! // The unchanged tail is *shared*, not copied.
//! assert!(v2.slices().last().unwrap().same_buffer(v1.slices().last().unwrap()));
//! ```
//!
//! Run `cargo run --release --bin repro -- all` (in `crates/bench`) to
//! regenerate every figure of the paper's evaluation; see EXPERIMENTS.md
//! for paper-vs-measured numbers.

pub use iolite_apps as apps;
pub use iolite_buf as buf;
pub use iolite_core as core;
pub use iolite_fs as fs;
pub use iolite_http as http;
pub use iolite_ipc as ipc;
pub use iolite_net as net;
pub use iolite_sim as sim;
pub use iolite_storm as storm;
pub use iolite_trace as trace;
pub use iolite_vm as vm;

//! Minimal offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this shim provides
//! the exact subset of the proptest API the workspace's property suites
//! use: the [`proptest!`] macro, `prop_assert*`, [`prop_oneof!`],
//! [`arbitrary::any`], integer-range / tuple / [`strategy::Just`] /
//! [`collection::vec`] strategies, `prop_map`, and
//! [`test_runner::ProptestConfig`].
//!
//! Differences from real proptest, by design:
//! - **No shrinking.** A failing case panics with the assert message;
//!   reproduce it by re-running (generation is deterministic per test
//!   name and case index).
//! - **Bounded cases.** The default is 64 cases per property (real
//!   proptest defaults to 256), overridable with the `PROPTEST_CASES`
//!   environment variable, so tier-1 CI stays fast.

pub mod test_runner {
    /// Per-test configuration; only `cases` is modeled.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run for each property.
        pub cases: u32,
        /// Whether `cases` was set explicitly (explicit configs beat the
        /// `PROPTEST_CASES` environment variable, as in real proptest).
        explicit: bool,
    }

    impl ProptestConfig {
        /// A config running exactly `cases` cases, ignoring `PROPTEST_CASES`.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases, explicit: true }
        }

        /// The case count to run: an explicit `with_cases` wins, otherwise
        /// `PROPTEST_CASES` overrides the default. Always at least 1, so a
        /// property can never pass vacuously.
        pub fn resolved_cases(&self) -> u32 {
            let cases = if self.explicit {
                self.cases
            } else {
                std::env::var("PROPTEST_CASES")
                    .ok()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(self.cases)
            };
            cases.max(1)
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64, explicit: false }
        }
    }

    /// Deterministic splitmix64 generator seeded from the test path and
    /// case index, so any failure is reproducible by re-running.
    #[derive(Debug, Clone)]
    pub struct TestRng(u64);

    impl TestRng {
        /// RNG for case number `case` of the named test.
        pub fn for_case(test_path: &str, case: u32) -> Self {
            let mut h = 0xcbf29ce484222325u64; // FNV-1a
            for b in test_path.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            TestRng(h ^ ((case as u64) << 1) ^ 0x9e3779b97f4a7c15)
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A generator of random values (no shrinking in this shim).
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Produce one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Type-erase into a [`BoxedStrategy`].
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// `prop_map` adapter.
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Owned, type-erased strategy (what `prop_oneof!` branches become).
    pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate(rng)
        }
    }

    /// Uniform choice between boxed branches (`prop_oneof!`).
    pub struct Union<T> {
        branches: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// A union over `branches`; panics if empty.
        pub fn new(branches: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!branches.is_empty(), "prop_oneof! needs at least one branch");
            Union { branches }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.branches.len() as u64) as usize;
            self.branches[i].generate(rng)
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start + rng.below(span) as $t
                }
            }
        )*};
    }
    range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary {
        /// Produce one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// The strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Full-range strategy for `T` (`any::<u8>()` etc.).
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec`s with element strategy `S` and random length.
    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    /// `Vec` strategy with length drawn from `len`.
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            assert!(self.len.start < self.len.end, "empty vec length range");
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// One-stop imports mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Declares `#[test]` functions whose arguments are drawn from
/// strategies; each runs for the configured number of cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (($config:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cases = $crate::test_runner::ProptestConfig::resolved_cases(&$config);
                for case in 0..cases {
                    let mut __rng = $crate::test_runner::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                    $body
                }
            }
        )*
    };
}

/// Uniform random choice among strategies yielding the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($branch:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($branch)),+
        ])
    };
}

/// Shim `prop_assert!`: plain `assert!` (no shrinking to report).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Shim `prop_assert_eq!`: plain `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Shim `prop_assert_ne!`: plain `assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

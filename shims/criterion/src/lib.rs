//! Minimal offline stand-in for the `criterion` bench harness.
//!
//! The build environment has no crates.io access, so this shim provides
//! the subset of criterion this workspace's benches use: [`Criterion`],
//! [`BenchmarkGroup`] (with `sample_size` / `warm_up_time` /
//! `measurement_time` / `throughput`), [`Bencher::iter`] and
//! [`Bencher::iter_batched`], [`Throughput`], [`BatchSize`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement is a short calibrated wall-clock loop printing a
//! `time/iter` line (plus throughput when declared) — good enough for a
//! baseline harness and for `cargo bench --no-run` compile gating, with
//! none of criterion's statistics or HTML reports. Passing `--quick-ci`
//! (or setting `CRITERION_SHIM_FAST=1`) shortens every measurement so a
//! full `cargo bench` run finishes quickly.

// The workspace-wide clippy.toml bans wall-clock types to keep the
// kernel pure, but a bench harness *is* a wall clock; the real purity
// gate for kernel code is iolite-lint's purity rule over
// `crates/core/src/pure/`.
#![allow(clippy::disallowed_types, clippy::disallowed_methods)]

use std::time::{Duration, Instant};

/// Top-level harness handle, passed to each bench function.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group<S: Into<String>>(
        &mut self,
        name: S,
    ) -> BenchmarkGroup<'_, measurement::WallTime> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 10,
            warm_up: Duration::from_millis(100),
            measurement: Duration::from_millis(500),
            throughput: None,
            _marker: std::marker::PhantomData,
        }
    }

    /// Register a benchmark outside any group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut g = self.benchmark_group("ungrouped");
        g.bench_function(name, f);
        g.finish();
        self
    }
}

pub mod measurement {
    /// Marker trait for measurement clocks (only wall time is modeled).
    pub trait Measurement {}

    /// Wall-clock measurement (the only clock in the shim).
    #[derive(Debug, Default)]
    pub struct WallTime;

    impl Measurement for WallTime {}
}

/// Declared throughput for a group, used to derive rate lines.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// Batch sizing hints for [`Bencher::iter_batched`]; the shim only uses
/// them to pick how many setup outputs to pre-build per sample.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs; batches of ~64.
    SmallInput,
    /// Large per-iteration inputs; batches of ~8.
    LargeInput,
    /// Re-run setup for every iteration.
    PerIteration,
}

/// A named group of benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a, M: measurement::Measurement = measurement::WallTime> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
    throughput: Option<Throughput>,
    _marker: std::marker::PhantomData<M>,
}

fn fast_mode() -> bool {
    std::env::var_os("CRITERION_SHIM_FAST").is_some()
        || std::env::args().any(|a| a == "--quick-ci" || a == "--test")
}

impl<M: measurement::Measurement> BenchmarkGroup<'_, M> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Set the warm-up duration before sampling.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Set the total measurement duration budget.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Declare per-iteration throughput for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark and print its timing line.
    pub fn bench_function<S, F>(&mut self, id: S, mut f: F) -> &mut Self
    where
        S: Into<String>,
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let (warm_up, measurement) = if fast_mode() {
            (Duration::from_millis(5), Duration::from_millis(20))
        } else {
            (self.warm_up, self.measurement)
        };
        let mut bencher = Bencher {
            warm_up,
            measurement,
            sample_size: self.sample_size,
            ns_per_iter: f64::NAN,
        };
        f(&mut bencher);
        let ns = bencher.ns_per_iter;
        let rate = match self.throughput {
            Some(Throughput::Bytes(b)) if ns > 0.0 => {
                let mib_s = b as f64 / (ns / 1e9) / (1024.0 * 1024.0);
                format!("  thrpt: {mib_s:>10.1} MiB/s")
            }
            Some(Throughput::Elements(e)) if ns > 0.0 => {
                let elem_s = e as f64 / (ns / 1e9);
                format!("  thrpt: {elem_s:>10.0} elem/s")
            }
            _ => String::new(),
        };
        println!(
            "{group}/{id:<24} time: {time:>12}{rate}",
            group = self.name,
            time = format_ns(ns),
        );
        self
    }

    /// End the group (no-op beyond matching criterion's API).
    pub fn finish(self) {}
}

fn format_ns(ns: f64) -> String {
    if !ns.is_finite() {
        "n/a".into()
    } else if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

/// Timing driver handed to each benchmark closure.
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    ns_per_iter: f64,
}

impl Bencher {
    /// Measure `f` called back-to-back; records the best sample mean.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm up and calibrate how many iterations fill one sample.
        let warm_end = Instant::now() + self.warm_up;
        let mut iters_done = 0u64;
        let cal_start = Instant::now();
        loop {
            std::hint::black_box(f());
            iters_done += 1;
            if Instant::now() >= warm_end {
                break;
            }
        }
        let per_iter = cal_start.elapsed().as_secs_f64() / iters_done as f64;
        let sample_budget = self.measurement.as_secs_f64() / self.sample_size as f64;
        let iters = ((sample_budget / per_iter.max(1e-9)) as u64).clamp(1, 1 << 24);

        let mut best = f64::INFINITY;
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            let mean = t0.elapsed().as_secs_f64() / iters as f64;
            best = best.min(mean);
        }
        self.ns_per_iter = best * 1e9;
    }

    /// Measure `routine` over inputs produced (untimed) by `setup`;
    /// honors the group's `measurement_time` and records the best
    /// per-batch mean (setup cost excluded) like [`Bencher::iter`].
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let batch = match size {
            BatchSize::SmallInput => 64,
            BatchSize::LargeInput => 8,
            BatchSize::PerIteration => 1,
        };
        let mut best = f64::INFINITY;
        let mut batches = 0u64;
        let deadline = Instant::now() + self.measurement;
        while batches == 0 || Instant::now() < deadline {
            let inputs: Vec<I> = (0..batch).map(|_| setup()).collect();
            let t0 = Instant::now();
            for input in inputs {
                std::hint::black_box(routine(input));
            }
            best = best.min(t0.elapsed().as_secs_f64() / batch as f64);
            batches += 1;
        }
        self.ns_per_iter = best * 1e9;
    }
}

/// Re-export matching `criterion::black_box`.
pub use std::hint::black_box;

/// Group bench functions under one callable, as real criterion does.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `fn main` running the named groups (benches use `harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
